//! The PMPI trace recorder (the `mpiP`-derived tool of Section 2.2–2.3).
//!
//! Installed as a [`PmpiHook`] on the runtime, the recorder observes every
//! application MPI call. At each call it:
//!
//! 1. closes the current *computation event* — the counter delta since the
//!    end of the previous MPI call (the paper's virtual `MPI_Compute`) —
//!    clustering it against cluster representatives with a relative-error threshold;
//! 2. normalizes the call into a [`CommEvent`] (relative ranks, pool-
//!    numbered handles) and hash-conses it into the rank-local event table;
//! 3. appends the event id to the rank's id sequence and accounts the raw
//!    (uncompressed) trace bytes the record would occupy on disk.
//!
//! Each rank's state sits behind its own mutex, touched only by that rank's
//! thread — interposition-style isolation with no cross-rank contention.

use std::hash::Hasher;
use std::mem;

use std::sync::Mutex;
use siesta_grammar::{Grammar, Sequitur};
use siesta_hash::FxHasher;
use siesta_mpisim::{CommId, HookCtx, MpiCall, PmpiHook};
use siesta_perfmodel::CounterVec;
use std::collections::HashMap;

use crate::event::{counters_close, rel_rank, CommEvent, ComputeStats, EventRecord};
use crate::pool::HandleMap;
use crate::serialize;

/// Default bounded per-rank stream buffer, in event ids.
pub const DEFAULT_STREAM_BUF: usize = 4096;
/// Smallest accepted stream buffer. Below this the per-flush bookkeeping
/// dominates the ingest cost for no memory benefit.
pub const STREAM_BUF_MIN: usize = 16;
/// Largest accepted stream buffer (2²⁴ ids = 64 MiB per rank) — beyond
/// this "bounded buffering" is materialization by another name.
pub const STREAM_BUF_MAX: usize = 1 << 24;

/// Resolve the stream-buffer size: explicit (CLI) value if given, else the
/// `SIESTA_STREAM_BUF` environment variable, else [`DEFAULT_STREAM_BUF`];
/// range-checked either way so a bad flag and a bad env var fail the same.
pub fn resolve_stream_buf(explicit: Option<usize>) -> Result<usize, String> {
    let (value, source) = match explicit {
        Some(v) => (v, "--stream-buf".to_string()),
        None => match std::env::var("SIESTA_STREAM_BUF") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(v) => (v, format!("SIESTA_STREAM_BUF={raw}")),
                Err(_) => return Err(format!("SIESTA_STREAM_BUF: not a number: {raw:?}")),
            },
            Err(_) => return Ok(DEFAULT_STREAM_BUF),
        },
    };
    if !(STREAM_BUF_MIN..=STREAM_BUF_MAX).contains(&value) {
        return Err(format!(
            "{source}: stream buffer must be in [{STREAM_BUF_MIN}, {STREAM_BUF_MAX}], \
             got {value}"
        ));
    }
    Ok(value)
}

/// Tracing configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Clustering threshold for computation events (paper: "a threshold to
    /// cluster similar computation events into one event").
    pub cluster_threshold: f64,
    /// Virtual cost charged per traced call: two counter reads plus the
    /// record write. Produces the Table 3 overhead column.
    pub overhead_ns: f64,
    /// Bounded per-rank buffer between the hook and the online Sequitur,
    /// in event ids (streaming recorders only). Overridable with
    /// `--stream-buf` / `SIESTA_STREAM_BUF` via [`resolve_stream_buf`].
    pub stream_buf: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            cluster_threshold: 0.15,
            overhead_ns: 600.0,
            stream_buf: DEFAULT_STREAM_BUF,
        }
    }
}

/// Where a rank's id sequence goes: a plain vector (materialized path) or
/// a bounded buffer feeding an online Sequitur (streaming path). Streaming
/// never holds more than `limit` ids outside the grammar — the full
/// sequence exists only as its compressed grammar plus a running content
/// hash.
enum SeqSink {
    Materialized(Vec<u32>),
    Streaming(Box<StreamSink>),
}

impl Default for SeqSink {
    fn default() -> Self {
        SeqSink::Materialized(Vec::new())
    }
}

struct StreamSink {
    buf: Vec<u32>,
    limit: usize,
    builder: Sequitur,
    /// Running FxHash over the id stream; with `len` it keys the
    /// cross-rank memo (verified by structural equality on hit, so a
    /// collision costs time, never correctness).
    hash: FxHasher,
    len: usize,
    flushes: u64,
    peak_buffered: usize,
}

impl StreamSink {
    fn new(limit: usize) -> StreamSink {
        StreamSink {
            // Grows on demand up to `limit`: preallocating the cap would
            // cost `4·limit` bytes on every rank of a 10⁴–10⁶-rank world
            // before a single event arrives.
            buf: Vec::new(),
            limit,
            builder: Sequitur::new(),
            hash: FxHasher::default(),
            len: 0,
            flushes: 0,
            peak_buffered: 0,
        }
    }

    fn push(&mut self, id: u32) {
        self.buf.push(id);
        self.peak_buffered = self.peak_buffered.max(self.buf.len());
        if self.buf.len() >= self.limit {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        for &id in &self.buf {
            self.hash.write_u32(id);
            self.builder.push(id);
        }
        self.len += self.buf.len();
        self.flushes += 1;
        self.buf.clear();
    }
}

#[derive(Default)]
struct RankTrace {
    sink: SeqSink,
    table: Vec<EventRecord>,
    comm_index: HashMap<CommEvent, u32>,
    /// (table id, representative) per compute cluster; scanned linearly —
    /// programs have few distinct computation behaviours.
    compute_clusters: Vec<(u32, CounterVec)>,
    last_counters: CounterVec,
    normalizer: Normalizer,
    raw_bytes: usize,
    initialized: bool,
}

impl RankTrace {
    fn ensure_init(&mut self) {
        if !self.initialized {
            self.normalizer = Normalizer::new();
            self.initialized = true;
        }
    }

    fn push_id(&mut self, id: u32) {
        match &mut self.sink {
            SeqSink::Materialized(seq) => seq.push(id),
            SeqSink::Streaming(s) => s.push(id),
        }
    }

    fn close_compute_interval(&mut self, counters: CounterVec, threshold: f64) {
        let delta = counters - self.last_counters;
        self.last_counters = counters;
        if delta.total() <= 0.0 {
            return;
        }
        let found = self
            .compute_clusters
            .iter()
            .find(|(_, repr)| counters_close(repr, &delta, threshold))
            .map(|&(id, _)| id);
        let id = match found {
            Some(id) => {
                if let EventRecord::Compute(stats) = &mut self.table[id as usize] {
                    stats.absorb(delta);
                }
                id
            }
            None => {
                let id = self.table.len() as u32;
                self.table.push(EventRecord::Compute(ComputeStats::new(delta)));
                self.compute_clusters.push((id, delta));
                id
            }
        };
        self.push_id(id);
        self.raw_bytes += serialize::compute_record_bytes();
    }

    fn record_comm(&mut self, event: CommEvent) {
        self.raw_bytes += serialize::comm_record_bytes(&event);
        let id = match self.comm_index.get(&event) {
            Some(&id) => id,
            None => {
                let id = self.table.len() as u32;
                self.table.push(EventRecord::Comm(event.clone()));
                self.comm_index.insert(event, id);
                id
            }
        };
        self.push_id(id);
    }
}

/// Handle normalization state shared by any PMPI-style recorder: maps the
/// runtime's request and communicator handles to free-pool numbers and
/// rewrites call records into normalized [`CommEvent`]s. Public so baseline
/// tracers (e.g. the ScalaBench-like recorder) normalize identically.
pub struct Normalizer {
    reqs: HandleMap<usize>,
    comms: HandleMap<u64>,
}

impl Default for Normalizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Normalizer {
    pub fn new() -> Normalizer {
        let mut comms = HandleMap::new();
        // MPI_COMM_WORLD is pool number 0 on every rank.
        comms.preassign(CommId::WORLD.0);
        Normalizer { reqs: HandleMap::new(), comms }
    }

    fn comm_id(&self, comm: CommId) -> u32 {
        self.comms
            .get(comm.0)
            .expect("communicator used before creation — split/dup not traced?")
    }

    pub fn normalize(&mut self, ctx: &HookCtx, call: &MpiCall) -> CommEvent {
        let me = ctx.comm_rank;
        let size = ctx.comm_size;
        match call {
            MpiCall::Send { comm, dest, tag, bytes } => CommEvent::Send {
                rel: rel_rank(me, *dest, size),
                tag: *tag,
                bytes: *bytes as u64,
                comm: self.comm_id(*comm),
            },
            MpiCall::Recv { comm, src, tag, bytes } => CommEvent::Recv {
                rel: rel_rank(me, *src, size),
                tag: *tag,
                bytes: *bytes as u64,
                comm: self.comm_id(*comm),
            },
            MpiCall::Isend { comm, dest, tag, bytes, req } => CommEvent::Isend {
                rel: rel_rank(me, *dest, size),
                tag: *tag,
                bytes: *bytes as u64,
                comm: self.comm_id(*comm),
                req: self.reqs.bind(*req),
            },
            MpiCall::Irecv { comm, src, tag, bytes, req } => CommEvent::Irecv {
                rel: rel_rank(me, *src, size),
                tag: *tag,
                bytes: *bytes as u64,
                comm: self.comm_id(*comm),
                req: self.reqs.bind(*req),
            },
            MpiCall::Wait { req } => {
                let id = self.reqs.unbind(*req).expect("wait on untraced request");
                CommEvent::Wait { req: id }
            }
            MpiCall::Waitall { reqs } => {
                let ids = reqs
                    .iter()
                    .map(|r| self.reqs.unbind(*r).expect("waitall on untraced request"))
                    .collect();
                CommEvent::Waitall { reqs: ids }
            }
            MpiCall::Sendrecv { comm, dest, send_tag, send_bytes, src, recv_tag, recv_bytes } => {
                CommEvent::Sendrecv {
                    dest_rel: rel_rank(me, *dest, size),
                    send_tag: *send_tag,
                    send_bytes: *send_bytes as u64,
                    src_rel: rel_rank(me, *src, size),
                    recv_tag: *recv_tag,
                    recv_bytes: *recv_bytes as u64,
                    comm: self.comm_id(*comm),
                }
            }
            MpiCall::Barrier { comm } => CommEvent::Barrier { comm: self.comm_id(*comm) },
            MpiCall::Bcast { comm, root, bytes } => CommEvent::Bcast {
                comm: self.comm_id(*comm),
                root: *root as u32,
                bytes: *bytes as u64,
            },
            MpiCall::Reduce { comm, root, bytes } => CommEvent::Reduce {
                comm: self.comm_id(*comm),
                root: *root as u32,
                bytes: *bytes as u64,
            },
            MpiCall::Allreduce { comm, bytes } => CommEvent::Allreduce {
                comm: self.comm_id(*comm),
                bytes: *bytes as u64,
            },
            MpiCall::Allgather { comm, bytes } => CommEvent::Allgather {
                comm: self.comm_id(*comm),
                bytes: *bytes as u64,
            },
            MpiCall::Alltoall { comm, bytes_per_peer } => CommEvent::Alltoall {
                comm: self.comm_id(*comm),
                bytes_per_peer: *bytes_per_peer as u64,
            },
            MpiCall::Alltoallv { comm, send_counts, recv_counts } => CommEvent::Alltoallv {
                comm: self.comm_id(*comm),
                send_counts: send_counts.iter().map(|&c| c as u64).collect(),
                recv_counts: recv_counts.iter().map(|&c| c as u64).collect(),
            },
            MpiCall::Gather { comm, root, bytes } => CommEvent::Gather {
                comm: self.comm_id(*comm),
                root: *root as u32,
                bytes: *bytes as u64,
            },
            MpiCall::Scatter { comm, root, bytes } => CommEvent::Scatter {
                comm: self.comm_id(*comm),
                root: *root as u32,
                bytes: *bytes as u64,
            },
            MpiCall::Gatherv { comm, root, counts } => CommEvent::Gatherv {
                comm: self.comm_id(*comm),
                root: *root as u32,
                counts: counts.iter().map(|&c| c as u64).collect(),
            },
            MpiCall::Scatterv { comm, root, counts } => CommEvent::Scatterv {
                comm: self.comm_id(*comm),
                root: *root as u32,
                counts: counts.iter().map(|&c| c as u64).collect(),
            },
            MpiCall::Scan { comm, bytes } => CommEvent::Scan {
                comm: self.comm_id(*comm),
                bytes: *bytes as u64,
            },
            MpiCall::ReduceScatterBlock { comm, bytes_per_rank } => {
                CommEvent::ReduceScatterBlock {
                    comm: self.comm_id(*comm),
                    bytes_per_rank: *bytes_per_rank as u64,
                }
            }
            MpiCall::CommSplit { parent, color, key, result } => {
                let parent_id = self.comm_id(*parent);
                let result_id = result.map(|c| self.comms.bind(c.0));
                CommEvent::CommSplit {
                    parent: parent_id,
                    color: *color,
                    key: *key,
                    result: result_id,
                }
            }
            MpiCall::CommDup { parent, result } => {
                let parent_id = self.comm_id(*parent);
                let c = result.expect("dup result available at post");
                CommEvent::CommDup { parent: parent_id, result: self.comms.bind(c.0) }
            }
            MpiCall::CommFree { comm } => {
                let id = self.comms.unbind(comm.0).expect("free of untraced communicator");
                CommEvent::CommFree { comm: id }
            }
        }
    }

}

/// Per-rank trace output.
#[derive(Debug, Clone)]
pub struct RankTraceData {
    pub table: Vec<EventRecord>,
    pub seq: Vec<u32>,
    /// Bytes the uncompressed trace records would occupy on disk (the
    /// Table 3 "Trace size" model).
    pub raw_bytes: usize,
}

/// Whole-job trace output (pre-merge).
#[derive(Debug, Clone)]
pub struct Trace {
    pub nranks: usize,
    pub ranks: Vec<RankTraceData>,
}

impl Trace {
    pub fn raw_bytes(&self) -> usize {
        self.ranks.iter().map(|r| r.raw_bytes).sum()
    }

    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.seq.len()).sum()
    }
}

/// Per-rank output of a streaming-ingest run: the local event table plus
/// the rank's id sequence in compressed form only — the grammar the online
/// Sequitur built during the run, and a running content hash + length of
/// the stream for cross-rank memoization.
#[derive(Debug, Clone)]
pub struct StreamedRank {
    pub table: Vec<EventRecord>,
    /// Grammar over **rank-local** table ids (the pipeline relabels it
    /// into global ids after the table merge).
    pub grammar: Grammar,
    /// FxHash over the local id stream, in order.
    pub seq_hash: u64,
    /// Number of events in the stream.
    pub seq_len: usize,
    pub raw_bytes: usize,
}

/// Whole-job output of a streaming-ingest run (pre-merge).
#[derive(Debug, Clone)]
pub struct StreamedTrace {
    pub nranks: usize,
    pub ranks: Vec<StreamedRank>,
}

impl StreamedTrace {
    pub fn raw_bytes(&self) -> usize {
        self.ranks.iter().map(|r| r.raw_bytes).sum()
    }

    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.seq_len).sum()
    }
}

/// The PMPI interposer. Share it with the `World` via `Arc`, run the
/// program, then call [`Recorder::finish`] (materialized recorders) or
/// [`Recorder::finish_streamed`] (streaming recorders).
pub struct Recorder {
    per_rank: Vec<Mutex<RankTrace>>,
    config: TraceConfig,
    stream: bool,
}

impl Recorder {
    /// A materialized recorder: each rank's id sequence is stored in full.
    pub fn new(nranks: usize, config: TraceConfig) -> Recorder {
        Recorder {
            per_rank: (0..nranks).map(|_| Mutex::new(RankTrace::default())).collect(),
            config,
            stream: false,
        }
    }

    /// A streaming recorder: each rank's ids feed an online Sequitur
    /// through a bounded buffer of `config.stream_buf` ids; the full
    /// sequence never materializes. Grammar construction happens on the
    /// scheduler's pool threads as the simulated program runs.
    pub fn new_streaming(nranks: usize, config: TraceConfig) -> Recorder {
        Recorder {
            per_rank: (0..nranks)
                .map(|_| {
                    Mutex::new(RankTrace {
                        sink: SeqSink::Streaming(Box::new(StreamSink::new(config.stream_buf.max(1)))),
                        ..RankTrace::default()
                    })
                })
                .collect(),
            config,
            stream: true,
        }
    }

    /// Extract the recorded trace, resetting the recorder.
    pub fn finish(&self) -> Trace {
        assert!(!self.stream, "finish() on a streaming Recorder — use finish_streamed()");
        let ranks: Vec<RankTraceData> = self
            .per_rank
            .iter()
            .map(|m| {
                let tr = mem::take(&mut *m.lock().unwrap());
                let seq = match tr.sink {
                    SeqSink::Materialized(seq) => seq,
                    SeqSink::Streaming(_) => unreachable!("materialized recorder"),
                };
                RankTraceData { table: tr.table, seq, raw_bytes: tr.raw_bytes }
            })
            .collect();
        let trace = Trace { nranks: self.per_rank.len(), ranks };
        siesta_obs::debug!(
            "trace: recorded {} events ({} raw bytes) across {} ranks",
            trace.total_events(),
            trace.raw_bytes(),
            trace.nranks
        );
        trace
    }

    /// Extract the streamed trace, resetting the recorder: drains every
    /// rank's residual buffer, finalizes its grammar, and flushes the
    /// stream counters. Ranks are drained in index order, so the obs
    /// stream is deterministic whatever order the scheduler completed
    /// them in.
    pub fn finish_streamed(&self) -> StreamedTrace {
        assert!(self.stream, "finish_streamed() on a materialized Recorder — use finish()");
        let mut flushes = 0u64;
        let mut peak = 0usize;
        let ranks: Vec<StreamedRank> = self
            .per_rank
            .iter()
            .map(|m| {
                let mut tr = self.fresh_streaming_take(m);
                let mut s = match mem::take(&mut tr.sink) {
                    SeqSink::Streaming(s) => s,
                    SeqSink::Materialized(_) => unreachable!("streaming recorder"),
                };
                s.flush();
                flushes += s.flushes;
                peak = peak.max(s.peak_buffered);
                StreamedRank {
                    table: tr.table,
                    grammar: s.builder.into_grammar(),
                    seq_hash: s.hash.finish(),
                    seq_len: s.len,
                    raw_bytes: tr.raw_bytes,
                }
            })
            .collect();
        siesta_obs::counter("trace.stream.flushes").add(flushes);
        siesta_obs::gauge("trace.stream.peak_buffered").set(peak as i64);
        let trace = StreamedTrace { nranks: self.per_rank.len(), ranks };
        siesta_obs::debug!(
            "trace: streamed {} events ({} raw bytes) across {} ranks, \
             {flushes} flushes, peak {peak} buffered",
            trace.total_events(),
            trace.raw_bytes(),
            trace.nranks
        );
        trace
    }

    /// Swap a rank's state out for a fresh streaming one (so a reused
    /// recorder keeps streaming, mirroring what `finish` does for the
    /// materialized mode).
    fn fresh_streaming_take(&self, m: &Mutex<RankTrace>) -> RankTrace {
        let fresh = RankTrace {
            sink: SeqSink::Streaming(Box::new(StreamSink::new(self.config.stream_buf.max(1)))),
            ..RankTrace::default()
        };
        mem::replace(&mut *m.lock().unwrap(), fresh)
    }
}

impl PmpiHook for Recorder {
    fn pre(&self, _ctx: &HookCtx, _call: &MpiCall) {
        // All recording happens at post time, when results (created
        // communicators) are known; counters cannot change inside MPI.
    }

    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        let mut tr = self.per_rank[ctx.rank].lock().unwrap();
        tr.ensure_init();
        tr.close_compute_interval(ctx.counters, self.config.cluster_threshold);
        let event = tr.normalizer.normalize(ctx, call);
        tr.record_comm(event);
    }

    fn overhead_ns(&self) -> f64 {
        self.config.overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
    use siesta_workloads::{ProblemSize, Program};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    fn record(program: Program, nprocs: usize) -> Trace {
        record_sized(program, nprocs, ProblemSize::Tiny)
    }

    fn record_sized(program: Program, nprocs: usize, size: ProblemSize) -> Trace {
        let rec = Arc::new(Recorder::new(nprocs, TraceConfig::default()));
        program.run_hooked(machine(), nprocs, size, rec.clone());
        rec.finish()
    }

    #[test]
    fn recording_is_deterministic() {
        let a = record(Program::Cg, 8);
        let b = record(Program::Cg, 8);
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.raw_bytes, y.raw_bytes);
        }
    }

    #[test]
    fn events_alternate_compute_and_comm() {
        let t = record(Program::Mg, 8);
        for r in &t.ranks {
            assert!(!r.seq.is_empty());
            // The table contains both kinds.
            assert!(r.table.iter().any(|e| e.is_comm()));
            assert!(r.table.iter().any(|e| !e.is_comm()));
        }
    }

    #[test]
    fn table_is_much_smaller_than_sequence() {
        // Iterative programs revisit the same events: compression potential.
        let t = record(Program::Sweep3d, 8);
        for r in &t.ranks {
            assert!(
                r.table.len() * 3 < r.seq.len(),
                "table {} vs seq {}",
                r.table.len(),
                r.seq.len()
            );
        }
    }

    #[test]
    fn symmetric_ring_produces_identical_comm_sequences() {
        // A pure ring exchange: with relative-rank encoding every rank's
        // normalized communication record stream is identical — the
        // property Section 2.2 relies on for cross-process merging.
        use siesta_mpisim::World;
        use siesta_perfmodel::KernelDesc;
        let rec = Arc::new(Recorder::new(6, TraceConfig::default()));
        World::new(machine(), 6).with_hook(rec.clone()).run(|mut rank| {
            Box::pin(async move {
                let comm = rank.comm_world();
                let p = rank.nranks();
                let right = (rank.rank() + 1) % p;
                let left = (rank.rank() + p - 1) % p;
                for _ in 0..10 {
                    rank.compute(&KernelDesc::stencil(5_000.0, 4.0, 65536.0));
                    let r = rank.irecv(&comm, left, 3, 2048);
                    let s = rank.isend(&comm, right, 3, 2048);
                    rank.waitall(&[r, s]).await;
                    rank.allreduce(&comm, 8).await;
                }
                rank
            })
        });
        let t = rec.finish();
        let decode = |rd: &RankTraceData| -> Vec<String> {
            rd.seq
                .iter()
                .filter_map(|&id| match &rd.table[id as usize] {
                    EventRecord::Comm(c) => Some(format!("{c:?}")),
                    EventRecord::Compute(_) => None,
                })
                .collect()
        };
        let first = decode(&t.ranks[0]);
        assert!(!first.is_empty());
        for r in &t.ranks[1..] {
            assert_eq!(decode(r), first);
        }
        // And with clustering, the *full* id sequences are identical too
        // (each rank clusters its noisy kernel readings into one event).
        for r in &t.ranks[1..] {
            assert_eq!(r.seq, t.ranks[0].seq);
        }
    }

    #[test]
    fn flash_comm_management_is_traced() {
        // Small size so the regrid interval (every 5 steps) is reached.
        let t = record_sized(Program::Sedov, 6, ProblemSize::Small);
        let has = |pred: &dyn Fn(&CommEvent) -> bool| {
            t.ranks.iter().any(|r| {
                r.table.iter().any(|e| match e {
                    EventRecord::Comm(c) => pred(c),
                    _ => false,
                })
            })
        };
        assert!(has(&|c| matches!(c, CommEvent::CommDup { .. })));
        assert!(has(&|c| matches!(c, CommEvent::CommSplit { .. })));
        assert!(has(&|c| matches!(c, CommEvent::CommFree { .. })));
    }

    #[test]
    fn tracing_overhead_is_small() {
        let base = Program::Bt.run(machine(), 9, ProblemSize::Tiny);
        let rec = Arc::new(Recorder::new(9, TraceConfig::default()));
        let hooked = Program::Bt.run_hooked(machine(), 9, ProblemSize::Tiny, rec);
        let overhead = (hooked.elapsed_ns() - base.elapsed_ns()) / base.elapsed_ns();
        assert!(overhead > 0.0);
        assert!(overhead < 0.10, "overhead {overhead} too large");
    }

    #[test]
    fn raw_trace_size_ordering_matches_paper() {
        // IS ≪ the dense solvers, as in Table 3.
        let is = record(Program::Is, 8).raw_bytes();
        let sw = record(Program::Sweep3d, 8).raw_bytes();
        assert!(is * 3 < sw, "IS {is} not well below Sweep3d {sw}");
    }

    #[test]
    fn finish_resets_state() {
        let rec = Arc::new(Recorder::new(4, TraceConfig::default()));
        Program::Is.run_hooked(machine(), 4, ProblemSize::Tiny, rec.clone());
        let t1 = rec.finish();
        assert!(t1.total_events() > 0);
        let t2 = rec.finish();
        assert_eq!(t2.total_events(), 0);
    }

    fn record_streamed(program: Program, nprocs: usize, buf: usize) -> StreamedTrace {
        let config = TraceConfig { stream_buf: buf, ..TraceConfig::default() };
        let rec = Arc::new(Recorder::new_streaming(nprocs, config));
        program.run_hooked(machine(), nprocs, ProblemSize::Tiny, rec.clone());
        rec.finish_streamed()
    }

    #[test]
    fn streamed_matches_materialized_per_rank() {
        // The streaming sink must be an exact compressed image of the
        // materialized path: same tables, same raw bytes, and a grammar
        // that expands to the very sequence the materialized path stored.
        for program in [Program::Cg, Program::Sweep3d, Program::Is] {
            let mat = record(program, 8);
            for buf in [16usize, 256, DEFAULT_STREAM_BUF] {
                let st = record_streamed(program, 8, buf);
                assert_eq!(st.raw_bytes(), mat.raw_bytes());
                assert_eq!(st.total_events(), mat.total_events());
                for (s, m) in st.ranks.iter().zip(&mat.ranks) {
                    assert_eq!(s.table, m.table);
                    assert_eq!(s.seq_len, m.seq.len());
                    assert_eq!(s.grammar.expand_main(), m.seq, "{program:?} buf={buf}");
                    // And the grammar is the one Sequitur would build from
                    // the materialized sequence (not merely expansion-equal).
                    assert_eq!(s.grammar, Sequitur::build(&m.seq));
                }
            }
        }
    }

    #[test]
    fn stream_hash_keys_equal_sequences_only() {
        let st = record_streamed(Program::Sweep3d, 8, 64);
        for (i, a) in st.ranks.iter().enumerate() {
            for (j, b) in st.ranks.iter().enumerate() {
                let eq_seq =
                    a.seq_len == b.seq_len && a.grammar.expand_main() == b.grammar.expand_main();
                if eq_seq {
                    assert_eq!(a.seq_hash, b.seq_hash, "ranks {i}/{j}");
                }
                if a.seq_hash != b.seq_hash {
                    assert!(!eq_seq, "ranks {i}/{j}");
                }
            }
        }
    }

    #[test]
    fn streamed_finish_resets_state() {
        let rec = Arc::new(Recorder::new_streaming(4, TraceConfig::default()));
        Program::Is.run_hooked(machine(), 4, ProblemSize::Tiny, rec.clone());
        assert!(rec.finish_streamed().total_events() > 0);
        // Still a streaming recorder after the reset, and empty.
        assert_eq!(rec.finish_streamed().total_events(), 0);
    }

    #[test]
    fn resolve_stream_buf_precedence_and_validation() {
        // Explicit beats default; out-of-range explicit rejected. (Env
        // interaction is exercised via the CLI, not here — tests run in
        // parallel and setting process-global env would race.)
        assert_eq!(resolve_stream_buf(Some(1024)), Ok(1024));
        assert!(resolve_stream_buf(Some(STREAM_BUF_MIN - 1)).is_err());
        assert!(resolve_stream_buf(Some(STREAM_BUF_MAX + 1)).is_err());
        assert_eq!(resolve_stream_buf(Some(STREAM_BUF_MIN)), Ok(STREAM_BUF_MIN));
        assert_eq!(resolve_stream_buf(Some(STREAM_BUF_MAX)), Ok(STREAM_BUF_MAX));
    }
}
