//! Global terminal-table merging (paper Section 2.6.1).
//!
//! "Many MPI programs exhibit a significant amount of duplication in
//! terminals between processes, which can be eliminated by recording the
//! repeated terminals once and assigning a unique global number. ... The
//! time complexity of the entire merging process is log₂P."
//!
//! This module performs that merge as an actual binary reduction tree:
//! per-rank tables combine pairwise, level by level, with each rank's id
//! sequence remapped into the winning table. Communication events merge on
//! structural equality (normalization already made them comparable);
//! computation events merge when their representatives agree within the
//! clustering threshold, pooling their counter statistics.

use siesta_grammar::{Grammar, Sequitur};
use siesta_hash::{fx_map_with_capacity, FxHashMap};

use crate::event::{counters_close, EventRecord};
use crate::recorder::Trace;

/// Cross-rank compute clustering threshold. Representatives from different
/// ranks measure the same kernel with independent noise, so the merge
/// threshold matches the recording threshold.
const MERGE_THRESHOLD: f64 = 0.15;

/// The job-wide trace after table merging: one global terminal table plus
/// per-rank sequences of global ids.
#[derive(Debug, Clone)]
pub struct GlobalTrace {
    pub nranks: usize,
    pub table: Vec<EventRecord>,
    pub seqs: Vec<Vec<u32>>,
    /// Total raw (uncompressed) trace bytes, carried through from recording.
    pub raw_bytes: usize,
    /// Tree-merge rounds performed (⌈log₂ P⌉, as the paper states).
    pub merge_rounds: u32,
}

/// Output of the table-only merge: the global terminal table plus, for
/// every rank, the composed local-table-id → global-id remap vector. The
/// remaps are table-sized (not sequence-sized), so this form is what the
/// streaming path consumes — the per-rank id sequences never have to
/// materialize to build it.
#[derive(Debug, Clone)]
pub struct MergedTables {
    pub nranks: usize,
    pub table: Vec<EventRecord>,
    /// `remaps[rank][local_id]` is the global id of that rank's local
    /// terminal. Indexed by rank; every vector has the rank's table length.
    pub remaps: Vec<Vec<u32>>,
    /// Tree-merge rounds performed (⌈log₂ P⌉, as the paper states).
    pub merge_rounds: u32,
}

struct Partial {
    table: Vec<EventRecord>,
    comm_index: FxHashMap<crate::event::CommEvent, u32>,
    /// (table id, representative) per compute cluster.
    compute_clusters: Vec<(u32, siesta_perfmodel::CounterVec)>,
    /// (rank, composed local→this-table remap) pairs covered by this
    /// partial table. Remaps compose through absorb levels instead of
    /// rewriting whole sequences at every level: function composition
    /// gives the same final mapping as the old per-level sequence
    /// rewrites, at table-size instead of sequence-length cost per round.
    remaps: Vec<(usize, Vec<u32>)>,
}

impl Partial {
    fn leaf(rank: usize, table: Vec<EventRecord>) -> Partial {
        let mut comm_index = fx_map_with_capacity(table.len());
        let mut compute_clusters = Vec::new();
        for (i, e) in table.iter().enumerate() {
            match e {
                EventRecord::Comm(c) => {
                    comm_index.insert(c.clone(), i as u32);
                }
                EventRecord::Compute(s) => {
                    compute_clusters.push((i as u32, s.repr));
                }
            }
        }
        let identity = (0..table.len() as u32).collect();
        Partial { table, comm_index, compute_clusters, remaps: vec![(rank, identity)] }
    }

    /// Fold `other` into `self`, composing its remaps.
    fn absorb(&mut self, other: Partial) {
        let mut remap = vec![0u32; other.table.len()];
        for (i, e) in other.table.into_iter().enumerate() {
            let gid = match e {
                EventRecord::Comm(c) => match self.comm_index.get(&c) {
                    Some(&g) => g,
                    None => {
                        let g = self.table.len() as u32;
                        self.comm_index.insert(c.clone(), g);
                        self.table.push(EventRecord::Comm(c));
                        g
                    }
                },
                EventRecord::Compute(s) => {
                    let hit = self
                        .compute_clusters
                        .iter()
                        .find(|(_, repr)| counters_close(repr, &s.repr, MERGE_THRESHOLD))
                        .map(|&(g, _)| g);
                    match hit {
                        Some(g) => {
                            if let EventRecord::Compute(mine) = &mut self.table[g as usize] {
                                mine.absorb_stats(&s);
                            }
                            g
                        }
                        None => {
                            let g = self.table.len() as u32;
                            self.compute_clusters.push((g, s.repr));
                            self.table.push(EventRecord::Compute(s));
                            g
                        }
                    }
                }
            };
            remap[i] = gid;
        }
        for (rank, mut r) in other.remaps {
            for id in &mut r {
                *id = remap[*id as usize];
            }
            self.remaps.push((rank, r));
        }
    }
}

/// Merge per-rank terminal tables into one global table via a binary
/// reduction tree, returning the table and per-rank remap vectors. This is
/// the sequence-free half of [`merge_tables`]; the streaming ingest path
/// calls it directly (its sequences live inside per-rank grammars).
pub fn merge_rank_tables(tables: Vec<Vec<EventRecord>>) -> MergedTables {
    let nranks = tables.len();
    let mut level: Vec<Partial> = tables
        .into_iter()
        .enumerate()
        .map(|(rank, table)| Partial::leaf(rank, table))
        .collect();
    let mut rounds = 0u32;
    while level.len() > 1 {
        rounds += 1;
        let _span = siesta_obs::span!("table-merge.round", round = rounds, tables = level.len());
        // Each round's pair-merges are independent: fan them out over the
        // worker pool. `parallel_map_owned` returns results in pair order,
        // so the reduction tree — and therefore every global id — is the
        // same one the sequential walk builds.
        let mut pairs = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        siesta_obs::counter("par.table_merge.pairs").add(pairs.len() as u64);
        // Small-work guard: a round is worth fanning out only when its
        // tables hold enough events to amortize the thread spawns (tiny
        // traces would pay ~100µs per worker to merge microseconds of
        // work). The estimate is pure data, so the guard cannot perturb
        // determinism.
        let events: usize = pairs
            .iter()
            .map(|(a, b)| a.table.len() + b.as_ref().map_or(0, |b| b.table.len()))
            .sum();
        const MIN_EVENTS_TO_FAN_OUT: usize = 4096;
        level = siesta_par::parallel_map_owned_min_work(
            pairs,
            events,
            MIN_EVENTS_TO_FAN_OUT,
            |_, (mut a, b)| {
                if let Some(b) = b {
                    a.absorb(b);
                }
                a
            },
        );
    }
    let root = level.pop().expect("at least one rank");
    let mut remaps = vec![Vec::new(); nranks];
    for (rank, r) in root.remaps {
        remaps[rank] = r;
    }
    siesta_obs::debug!(
        "table-merge: {nranks} ranks -> {} global terminals in {rounds} rounds",
        root.table.len()
    );
    MergedTables { nranks, table: root.table, remaps, merge_rounds: rounds }
}

/// Merge all rank tables into one global table via a binary reduction tree
/// and rewrite every rank's id sequence into global ids.
pub fn merge_tables(trace: Trace) -> GlobalTrace {
    let nranks = trace.nranks;
    let raw_bytes = trace.raw_bytes();
    let mut tables = Vec::with_capacity(nranks);
    let mut seqs = Vec::with_capacity(nranks);
    for rd in trace.ranks {
        tables.push(rd.table);
        seqs.push(rd.seq);
    }
    let merged = merge_rank_tables(tables);
    // Apply each rank's composed remap to its sequence exactly once — the
    // composition of the per-level mappings is the same function the old
    // per-level sequence rewrites applied step by step, so every output id
    // is bit-identical to the incremental rewrite. One pass over the
    // events replaces ⌈log₂P⌉ of them.
    let events: usize = seqs.iter().map(Vec::len).sum();
    const MIN_EVENTS_TO_FAN_OUT: usize = 4096;
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = seqs.into_iter().zip(merged.remaps).collect();
    let seqs = siesta_par::parallel_map_owned_min_work(
        pairs,
        events,
        MIN_EVENTS_TO_FAN_OUT,
        |_, (mut seq, remap)| {
            for id in &mut seq {
                *id = remap[*id as usize];
            }
            seq
        },
    );
    GlobalTrace {
        nranks,
        table: merged.table,
        seqs,
        raw_bytes,
        merge_rounds: merged.merge_rounds,
    }
}

/// The job-wide trace a streaming ingest produces: one global terminal
/// table plus per-rank grammars whose terminals are *global* ids. The flat
/// per-rank id sequences never materialize — each rank's sequence exists
/// only as its grammar, built online while the program ran.
#[derive(Debug, Clone)]
pub struct StreamedGlobal {
    pub nranks: usize,
    pub table: Vec<EventRecord>,
    /// One grammar per rank, over global terminal ids. Equivalent (bit
    /// identical after expansion) to `Sequitur::build` of the rank's row in
    /// [`GlobalTrace::seqs`].
    pub grammars: Vec<Grammar>,
    pub raw_bytes: usize,
    pub merge_rounds: u32,
}

impl StreamedGlobal {
    /// Expand one rank's full global-id sequence. Bounded by one rank's
    /// events — callers that stream ranks one at a time never hold the
    /// whole job's sequences.
    pub fn expand_rank(&self, rank: usize) -> Vec<u32> {
        self.grammars[rank].expand_main()
    }

    /// Write the columnar trace store, expanding one rank at a time. The
    /// output is byte-identical to [`crate::store::write_store`] over the
    /// materialized [`GlobalTrace`] of the same run.
    pub fn write_store(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let file = std::fs::File::create(path)?;
        let mut sink = std::io::BufWriter::new(file);
        let mut w = crate::store::StoreWriter::new(
            &mut sink,
            self.nranks,
            self.merge_rounds,
            self.raw_bytes,
            &self.table,
        )?;
        for rank in 0..self.nranks {
            let seq = self.expand_rank(rank);
            for chunk in seq.chunks(crate::store::DEFAULT_CHUNK_IDS) {
                w.append_chunk(rank as u32, chunk)?;
            }
        }
        w.finish()?;
        sink.flush()
    }

    /// Materialize every sequence — the differential oracle's bridge back
    /// to the row-oriented world. Costs the memory streaming avoids.
    pub fn to_global_trace(&self) -> GlobalTrace {
        GlobalTrace {
            nranks: self.nranks,
            table: self.table.clone(),
            seqs: (0..self.nranks).map(|r| self.expand_rank(r)).collect(),
            raw_bytes: self.raw_bytes,
            merge_rounds: self.merge_rounds,
        }
    }
}

/// True when no two local ids map to the same global id. Every local id
/// occurs in the rank's sequence (tables are hash-consed from observed
/// events), so whole-vector injectivity is exactly injectivity over the
/// symbols Sequitur saw.
fn remap_injective(remap: &[u32], nglobal: usize) -> bool {
    let mut seen = vec![false; nglobal];
    for &g in remap {
        let slot = &mut seen[g as usize];
        if *slot {
            return false;
        }
        *slot = true;
    }
    true
}

/// Merge a streamed trace: fold the per-rank tables through the binary
/// reduction tree, then lift each rank's *local-id* grammar to global ids
/// without expanding it.
///
/// Sequitur's decisions depend only on the equality pattern of its input,
/// so for an injective remap, relabeling the streamed grammar's terminals
/// yields bit-for-bit the grammar `Sequitur::build` would produce from the
/// remapped sequence (property-tested in `siesta-grammar`). Non-injective
/// remaps — distinct local compute clusters collapsing into one global
/// cluster — change the equality pattern, so those ranks (rare; counted in
/// `grammar.stream.rebuilds`) expand, remap, and rebuild.
///
/// With `memoize` on, ranks whose running content hash, length, grammar,
/// and composed remap all match an earlier rank clone its lifted grammar
/// instead of relabeling again (`grammar.memo.stream_hits`). The hash only
/// nominates a candidate — equality of grammar (which pins the exact local
/// sequence) and remap decides, so a collision costs a comparison, never
/// correctness.
pub fn merge_streamed(st: crate::recorder::StreamedTrace, memoize: bool) -> StreamedGlobal {
    let nranks = st.nranks;
    let raw_bytes = st.raw_bytes();
    let mut tables = Vec::with_capacity(nranks);
    let mut locals: Vec<(Grammar, u64, usize)> = Vec::with_capacity(nranks);
    for r in st.ranks {
        tables.push(r.table);
        locals.push((r.grammar, r.seq_hash, r.seq_len));
    }
    let mut merged = merge_rank_tables(tables);
    let nglobal = merged.table.len();

    // Assign every rank an owner in index order: itself (unique) or the
    // first earlier rank proven to carry the same lifted grammar.
    enum Slot {
        Owner(u32),
        Dup(u32),
    }
    let mut by_hash: FxHashMap<u64, Vec<u32>> = fx_map_with_capacity(nranks);
    let mut slots = Vec::with_capacity(nranks);
    let mut owners: Vec<u32> = Vec::new();
    let mut stream_hits = 0u64;
    for rank in 0..nranks {
        let (grammar, hash, len) = &locals[rank];
        let dup = if memoize {
            by_hash.get(hash).and_then(|cands| {
                cands
                    .iter()
                    .copied()
                    .find(|&o| {
                        let (og, _, olen) = &locals[o as usize];
                        *olen == *len
                            && merged.remaps[o as usize] == merged.remaps[rank]
                            && og == grammar
                    })
            })
        } else {
            None
        };
        match dup {
            Some(owner) => {
                stream_hits += 1;
                slots.push(Slot::Dup(owner));
            }
            None => {
                by_hash.entry(*hash).or_default().push(rank as u32);
                slots.push(Slot::Owner(owners.len() as u32));
                owners.push(rank as u32);
            }
        }
    }
    siesta_obs::counter("grammar.memo.stream_hits").add(stream_hits);

    // Lift each unique rank's grammar to global ids, in parallel. Outputs
    // land in owner order, so the result is thread-count independent.
    let _span = siesta_obs::span!("sequitur-lift", ranks = nranks, unique = owners.len());
    siesta_obs::counter("par.sequitur.tasks").add(owners.len() as u64);
    let mut rebuilds = 0u64;
    let items: Vec<(Grammar, Vec<u32>, bool)> = owners
        .iter()
        .map(|&rank| {
            let g = std::mem::replace(&mut locals[rank as usize].0, Grammar { rules: vec![] });
            let remap = std::mem::take(&mut merged.remaps[rank as usize]);
            let injective = remap_injective(&remap, nglobal);
            if !injective {
                rebuilds += 1;
            }
            (g, remap, injective)
        })
        .collect();
    siesta_obs::counter("grammar.stream.rebuilds").add(rebuilds);
    let work: usize = items.iter().map(|(g, _, _)| g.size()).sum();
    const MIN_SYMBOLS_TO_FAN_OUT: usize = 8192;
    let lifted: Vec<Grammar> = siesta_par::parallel_map_owned_min_work(
        items,
        work,
        MIN_SYMBOLS_TO_FAN_OUT,
        |_, (g, remap, injective)| {
            if injective {
                g.relabel_terminals(&remap)
            } else {
                // Equality pattern changed under the merge: fall back to
                // expand → remap → rebuild, exactly the materialized path.
                let mut seq = g.expand_main();
                for id in &mut seq {
                    *id = remap[*id as usize];
                }
                Sequitur::build(&seq)
            }
        },
    );

    let grammars: Vec<Grammar> = slots
        .iter()
        .map(|s| match s {
            Slot::Owner(u) => lifted[*u as usize].clone(),
            Slot::Dup(owner) => match &slots[*owner as usize] {
                Slot::Owner(u) => lifted[*u as usize].clone(),
                Slot::Dup(_) => unreachable!("owners are never duplicates"),
            },
        })
        .collect();

    StreamedGlobal {
        nranks,
        table: merged.table,
        grammars,
        raw_bytes,
        merge_rounds: merged.merge_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommEvent, ComputeStats, EventRecord};
    use crate::recorder::RankTraceData;
    use siesta_perfmodel::CounterVec;

    fn comm(rel: u32) -> EventRecord {
        EventRecord::Comm(CommEvent::Send { rel, tag: 0, bytes: 64, comm: 0 })
    }

    fn compute(scale: f64, v: f64) -> EventRecord {
        EventRecord::Compute(ComputeStats::new(
            CounterVec::new(v, v, v, v, v, v) * scale,
        ))
    }

    fn trace(ranks: Vec<(Vec<EventRecord>, Vec<u32>)>) -> Trace {
        Trace {
            nranks: ranks.len(),
            ranks: ranks
                .into_iter()
                .map(|(table, seq)| RankTraceData { table, seq, raw_bytes: 100 })
                .collect(),
        }
    }

    #[test]
    fn duplicate_terminals_merge_across_ranks() {
        let t = trace(vec![
            (vec![comm(1), compute(1.0, 10.0)], vec![0, 1, 0]),
            (vec![comm(1), compute(1.05, 10.0)], vec![0, 1, 0]),
            (vec![comm(2)], vec![0, 0]),
            (vec![comm(1)], vec![0]),
        ]);
        let g = merge_tables(t);
        // comm(1), compute(3), comm(2): three global terminals.
        assert_eq!(g.table.len(), 3);
        assert_eq!(g.merge_rounds, 2); // log2(4)
        // Ranks 0 and 1 now share identical global sequences.
        assert_eq!(g.seqs[0], g.seqs[1]);
        // Rank 2 maps to the comm(2) terminal, wherever it landed.
        assert_eq!(g.seqs[2].len(), 2);
        assert_ne!(g.seqs[2][0], g.seqs[0][0]);
        // Compute statistics pooled: count 2, mean 15.
        let pooled = g
            .table
            .iter()
            .find_map(|e| match e {
                EventRecord::Compute(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(pooled.count, 2);
        assert!((pooled.mean().ins - 10.25).abs() < 1e-9);
    }

    #[test]
    fn single_rank_passes_through() {
        let t = trace(vec![(vec![comm(1), comm(2)], vec![0, 1, 1])]);
        let g = merge_tables(t);
        assert_eq!(g.table.len(), 2);
        assert_eq!(g.seqs[0], vec![0, 1, 1]);
        assert_eq!(g.merge_rounds, 0);
        assert_eq!(g.raw_bytes, 100);
    }

    #[test]
    fn rounds_are_log2_of_ranks() {
        for (p, expect) in [(2usize, 1u32), (3, 2), (8, 3), (9, 4), (64, 6)] {
            let t = trace((0..p).map(|_| (vec![comm(1)], vec![0])).collect());
            assert_eq!(merge_tables(t).merge_rounds, expect, "p={p}");
        }
    }

    #[test]
    fn table_only_merge_agrees_with_sequence_rewrite() {
        // Applying the composed remaps by hand must reproduce exactly what
        // merge_tables produces — the streaming path depends on it.
        let ranks: Vec<(Vec<EventRecord>, Vec<u32>)> = vec![
            (vec![comm(1), compute(1.0, 10.0), comm(2)], vec![0, 1, 2, 0]),
            (vec![comm(2), compute(1.02, 10.0)], vec![0, 1, 1]),
            (vec![comm(3), comm(1)], vec![1, 0, 1]),
            (vec![compute(5.0, 10.0), comm(1)], vec![0, 1]),
            (vec![comm(1), compute(1.0, 10.0), comm(2)], vec![0, 1, 2, 0]),
        ];
        let tables: Vec<Vec<EventRecord>> = ranks.iter().map(|(t, _)| t.clone()).collect();
        let merged = merge_rank_tables(tables);
        let g = merge_tables(trace(ranks.clone()));
        assert_eq!(merged.table.len(), g.table.len());
        assert_eq!(merged.merge_rounds, g.merge_rounds);
        for (rank, (table, seq)) in ranks.iter().enumerate() {
            assert_eq!(merged.remaps[rank].len(), table.len());
            let rewritten: Vec<u32> =
                seq.iter().map(|&id| merged.remaps[rank][id as usize]).collect();
            assert_eq!(rewritten, g.seqs[rank], "rank {rank}");
        }
        // Identical leaves compose to identical remaps (memo-on-stream
        // shares relabeled grammars between such ranks).
        assert_eq!(merged.remaps[0], merged.remaps[4]);
    }

    fn streamed(ranks: &[(Vec<EventRecord>, Vec<u32>)]) -> crate::recorder::StreamedTrace {
        use std::hash::Hasher;
        crate::recorder::StreamedTrace {
            nranks: ranks.len(),
            ranks: ranks
                .iter()
                .map(|(table, seq)| {
                    let mut h = siesta_hash::FxHasher::default();
                    for &id in seq {
                        h.write_u32(id);
                    }
                    crate::recorder::StreamedRank {
                        table: table.clone(),
                        grammar: Sequitur::build(seq),
                        seq_hash: h.finish(),
                        seq_len: seq.len(),
                        raw_bytes: 100,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn streamed_merge_matches_materialized() {
        // Includes identical ranks (memo hits), a rank whose two compute
        // clusters collapse into one global cluster (non-injective remap →
        // rebuild fallback), and an empty-ish rank.
        let ranks: Vec<(Vec<EventRecord>, Vec<u32>)> = vec![
            (vec![comm(1), compute(1.0, 10.0), comm(2)], vec![0, 1, 2, 0, 1]),
            (vec![comm(2), compute(1.02, 10.0)], vec![0, 1, 1, 0]),
            // Two local compute clusters within the merge threshold of each
            // other's global cluster: both collapse onto terminal
            // `compute(1.0)` after the tree merge.
            (
                vec![compute(1.0, 10.0), compute(1.1, 10.0), comm(1)],
                vec![0, 2, 1, 2, 0, 1],
            ),
            (vec![comm(1), compute(1.0, 10.0), comm(2)], vec![0, 1, 2, 0, 1]),
            (vec![comm(3)], vec![0]),
        ];
        let g = merge_tables(trace(ranks.clone()));
        for memo in [false, true] {
            let sg = merge_streamed(streamed(&ranks), memo);
            assert_eq!(sg.table.len(), g.table.len());
            assert_eq!(sg.merge_rounds, g.merge_rounds);
            assert_eq!(sg.raw_bytes, g.raw_bytes);
            for rank in 0..ranks.len() {
                assert_eq!(sg.expand_rank(rank), g.seqs[rank], "rank {rank} memo {memo}");
                // Not just the same sequence: the same grammar Sequitur
                // would build from the materialized global sequence.
                assert_eq!(
                    sg.grammars[rank],
                    Sequitur::build(&g.seqs[rank]),
                    "rank {rank} memo {memo}"
                );
            }
            assert_eq!(sg.to_global_trace().seqs, g.seqs);
        }
    }

    #[test]
    fn remap_injectivity_detection() {
        assert!(remap_injective(&[0, 2, 1], 3));
        assert!(remap_injective(&[], 3));
        assert!(!remap_injective(&[0, 1, 0], 2));
    }

    #[test]
    fn remap_preserves_per_rank_event_streams() {
        // Whatever the table order, decoding each rank's global sequence
        // must reproduce its original record stream.
        let r0 = vec![comm(1), comm(2)];
        let r1 = vec![comm(2), comm(3)];
        let t = trace(vec![(r0.clone(), vec![0, 1, 0]), (r1.clone(), vec![1, 0, 1])]);
        let g = merge_tables(t);
        let decode = |table: &[EventRecord], seq: &[u32]| -> Vec<String> {
            seq.iter().map(|&i| format!("{:?}", table[i as usize])).collect()
        };
        assert_eq!(decode(&g.table, &g.seqs[0]), decode(&r0, &[0, 1, 0]));
        assert_eq!(decode(&g.table, &g.seqs[1]), decode(&r1, &[1, 0, 1]));
    }
}
