//! Global terminal-table merging (paper Section 2.6.1).
//!
//! "Many MPI programs exhibit a significant amount of duplication in
//! terminals between processes, which can be eliminated by recording the
//! repeated terminals once and assigning a unique global number. ... The
//! time complexity of the entire merging process is log₂P."
//!
//! This module performs that merge as an actual binary reduction tree:
//! per-rank tables combine pairwise, level by level, with each rank's id
//! sequence remapped into the winning table. Communication events merge on
//! structural equality (normalization already made them comparable);
//! computation events merge when their representatives agree within the
//! clustering threshold, pooling their counter statistics.

use siesta_hash::{fx_map_with_capacity, FxHashMap};

use crate::event::{counters_close, EventRecord};
use crate::recorder::Trace;

/// Cross-rank compute clustering threshold. Representatives from different
/// ranks measure the same kernel with independent noise, so the merge
/// threshold matches the recording threshold.
const MERGE_THRESHOLD: f64 = 0.15;

/// The job-wide trace after table merging: one global terminal table plus
/// per-rank sequences of global ids.
#[derive(Debug, Clone)]
pub struct GlobalTrace {
    pub nranks: usize,
    pub table: Vec<EventRecord>,
    pub seqs: Vec<Vec<u32>>,
    /// Total raw (uncompressed) trace bytes, carried through from recording.
    pub raw_bytes: usize,
    /// Tree-merge rounds performed (⌈log₂ P⌉, as the paper states).
    pub merge_rounds: u32,
}

struct Partial {
    table: Vec<EventRecord>,
    comm_index: FxHashMap<crate::event::CommEvent, u32>,
    /// (table id, representative) per compute cluster.
    compute_clusters: Vec<(u32, siesta_perfmodel::CounterVec)>,
    /// (rank, remapped sequence) pairs covered by this partial table.
    seqs: Vec<(usize, Vec<u32>)>,
}

impl Partial {
    fn leaf(rank: usize, table: Vec<EventRecord>, seq: Vec<u32>) -> Partial {
        let mut comm_index = fx_map_with_capacity(table.len());
        let mut compute_clusters = Vec::new();
        for (i, e) in table.iter().enumerate() {
            match e {
                EventRecord::Comm(c) => {
                    comm_index.insert(c.clone(), i as u32);
                }
                EventRecord::Compute(s) => {
                    compute_clusters.push((i as u32, s.repr));
                }
            }
        }
        Partial { table, comm_index, compute_clusters, seqs: vec![(rank, seq)] }
    }

    /// Fold `other` into `self`, remapping its sequences.
    fn absorb(&mut self, other: Partial) {
        let mut remap = vec![0u32; other.table.len()];
        for (i, e) in other.table.into_iter().enumerate() {
            let gid = match e {
                EventRecord::Comm(c) => match self.comm_index.get(&c) {
                    Some(&g) => g,
                    None => {
                        let g = self.table.len() as u32;
                        self.comm_index.insert(c.clone(), g);
                        self.table.push(EventRecord::Comm(c));
                        g
                    }
                },
                EventRecord::Compute(s) => {
                    let hit = self
                        .compute_clusters
                        .iter()
                        .find(|(_, repr)| counters_close(repr, &s.repr, MERGE_THRESHOLD))
                        .map(|&(g, _)| g);
                    match hit {
                        Some(g) => {
                            if let EventRecord::Compute(mine) = &mut self.table[g as usize] {
                                mine.absorb_stats(&s);
                            }
                            g
                        }
                        None => {
                            let g = self.table.len() as u32;
                            self.compute_clusters.push((g, s.repr));
                            self.table.push(EventRecord::Compute(s));
                            g
                        }
                    }
                }
            };
            remap[i] = gid;
        }
        for (rank, seq) in other.seqs {
            let mapped = seq.into_iter().map(|id| remap[id as usize]).collect();
            self.seqs.push((rank, mapped));
        }
    }
}

/// Merge all rank tables into one global table via a binary reduction tree.
pub fn merge_tables(trace: Trace) -> GlobalTrace {
    let nranks = trace.nranks;
    let raw_bytes = trace.raw_bytes();
    let mut level: Vec<Partial> = trace
        .ranks
        .into_iter()
        .enumerate()
        .map(|(rank, rd)| Partial::leaf(rank, rd.table, rd.seq))
        .collect();
    let mut rounds = 0u32;
    while level.len() > 1 {
        rounds += 1;
        let _span = siesta_obs::span!("table-merge.round", round = rounds, tables = level.len());
        // Each round's pair-merges are independent: fan them out over the
        // worker pool. `parallel_map_owned` returns results in pair order,
        // so the reduction tree — and therefore every global id — is the
        // same one the sequential walk builds.
        let mut pairs = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        siesta_obs::counter("par.table_merge.pairs").add(pairs.len() as u64);
        // Small-work guard: a round is worth fanning out only when its
        // tables hold enough events to amortize the thread spawns (tiny
        // traces would pay ~100µs per worker to merge microseconds of
        // work). The estimate is pure data, so the guard cannot perturb
        // determinism.
        let events: usize = pairs
            .iter()
            .map(|(a, b)| a.table.len() + b.as_ref().map_or(0, |b| b.table.len()))
            .sum();
        const MIN_EVENTS_TO_FAN_OUT: usize = 4096;
        level = siesta_par::parallel_map_owned_min_work(
            pairs,
            events,
            MIN_EVENTS_TO_FAN_OUT,
            |_, (mut a, b)| {
                if let Some(b) = b {
                    a.absorb(b);
                }
                a
            },
        );
    }
    let root = level.pop().expect("at least one rank");
    let mut seqs = vec![Vec::new(); nranks];
    for (rank, seq) in root.seqs {
        seqs[rank] = seq;
    }
    siesta_obs::debug!(
        "table-merge: {nranks} ranks -> {} global terminals in {rounds} rounds",
        root.table.len()
    );
    GlobalTrace { nranks, table: root.table, seqs, raw_bytes, merge_rounds: rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommEvent, ComputeStats, EventRecord};
    use crate::recorder::RankTraceData;
    use siesta_perfmodel::CounterVec;

    fn comm(rel: u32) -> EventRecord {
        EventRecord::Comm(CommEvent::Send { rel, tag: 0, bytes: 64, comm: 0 })
    }

    fn compute(scale: f64, v: f64) -> EventRecord {
        EventRecord::Compute(ComputeStats::new(
            CounterVec::new(v, v, v, v, v, v) * scale,
        ))
    }

    fn trace(ranks: Vec<(Vec<EventRecord>, Vec<u32>)>) -> Trace {
        Trace {
            nranks: ranks.len(),
            ranks: ranks
                .into_iter()
                .map(|(table, seq)| RankTraceData { table, seq, raw_bytes: 100 })
                .collect(),
        }
    }

    #[test]
    fn duplicate_terminals_merge_across_ranks() {
        let t = trace(vec![
            (vec![comm(1), compute(1.0, 10.0)], vec![0, 1, 0]),
            (vec![comm(1), compute(1.05, 10.0)], vec![0, 1, 0]),
            (vec![comm(2)], vec![0, 0]),
            (vec![comm(1)], vec![0]),
        ]);
        let g = merge_tables(t);
        // comm(1), compute(3), comm(2): three global terminals.
        assert_eq!(g.table.len(), 3);
        assert_eq!(g.merge_rounds, 2); // log2(4)
        // Ranks 0 and 1 now share identical global sequences.
        assert_eq!(g.seqs[0], g.seqs[1]);
        // Rank 2 maps to the comm(2) terminal, wherever it landed.
        assert_eq!(g.seqs[2].len(), 2);
        assert_ne!(g.seqs[2][0], g.seqs[0][0]);
        // Compute statistics pooled: count 2, mean 15.
        let pooled = g
            .table
            .iter()
            .find_map(|e| match e {
                EventRecord::Compute(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(pooled.count, 2);
        assert!((pooled.mean().ins - 10.25).abs() < 1e-9);
    }

    #[test]
    fn single_rank_passes_through() {
        let t = trace(vec![(vec![comm(1), comm(2)], vec![0, 1, 1])]);
        let g = merge_tables(t);
        assert_eq!(g.table.len(), 2);
        assert_eq!(g.seqs[0], vec![0, 1, 1]);
        assert_eq!(g.merge_rounds, 0);
        assert_eq!(g.raw_bytes, 100);
    }

    #[test]
    fn rounds_are_log2_of_ranks() {
        for (p, expect) in [(2usize, 1u32), (3, 2), (8, 3), (9, 4), (64, 6)] {
            let t = trace((0..p).map(|_| (vec![comm(1)], vec![0])).collect());
            assert_eq!(merge_tables(t).merge_rounds, expect, "p={p}");
        }
    }

    #[test]
    fn remap_preserves_per_rank_event_streams() {
        // Whatever the table order, decoding each rank's global sequence
        // must reproduce its original record stream.
        let r0 = vec![comm(1), comm(2)];
        let r1 = vec![comm(2), comm(3)];
        let t = trace(vec![(r0.clone(), vec![0, 1, 0]), (r1.clone(), vec![1, 0, 1])]);
        let g = merge_tables(t);
        let decode = |table: &[EventRecord], seq: &[u32]| -> Vec<String> {
            seq.iter().map(|&i| format!("{:?}", table[i as usize])).collect()
        };
        assert_eq!(decode(&g.table, &g.seqs[0]), decode(&r0, &[0, 1, 0]));
        assert_eq!(decode(&g.table, &g.seqs[1]), decode(&r1, &[1, 0, 1]));
    }
}
