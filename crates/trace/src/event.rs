//! Normalized trace events (paper Section 2.2–2.3).
//!
//! Raw PMPI call records contain three kinds of run-dependent values that
//! defeat compression: absolute partner ranks (different on every process),
//! request handles (allocation-history-dependent), and communicator handles
//! (random at runtime). Normalization rewrites them:
//!
//! * partner ranks become **relative ranks** — `(peer − me) mod comm_size` —
//!   so "send to my east neighbor" is the same terminal on every rank;
//! * requests and communicators become **pool numbers** allocated from a
//!   free list starting at zero, so the same logical handle sequence gets
//!   the same numbers on every rank.
//!
//! Computation events are counter-vector deltas, clustered by a quantized
//! log-scale signature so noisy readings of the same kernel share one
//! terminal id across ranks.

use siesta_perfmodel::CounterVec;

/// Relative rank encoding.
pub fn rel_rank(me: usize, peer: usize, comm_size: usize) -> u32 {
    ((peer + comm_size - me) % comm_size) as u32
}

/// Inverse of [`rel_rank`].
pub fn abs_rank(me: usize, rel: u32, comm_size: usize) -> usize {
    (me + rel as usize) % comm_size
}

/// A normalized communication event — one terminal of the trace grammar.
///
/// All partner ranks are relative; `req`/`comm` are pool numbers. Fully
/// `Eq + Hash` so identical events across iterations and ranks collapse to
/// one table entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CommEvent {
    Send { rel: u32, tag: i32, bytes: u64, comm: u32 },
    Recv { rel: u32, tag: i32, bytes: u64, comm: u32 },
    Isend { rel: u32, tag: i32, bytes: u64, comm: u32, req: u32 },
    Irecv { rel: u32, tag: i32, bytes: u64, comm: u32, req: u32 },
    Wait { req: u32 },
    Waitall { reqs: Vec<u32> },
    Sendrecv {
        dest_rel: u32,
        send_tag: i32,
        send_bytes: u64,
        src_rel: u32,
        recv_tag: i32,
        recv_bytes: u64,
        comm: u32,
    },
    Barrier { comm: u32 },
    Bcast { comm: u32, root: u32, bytes: u64 },
    Reduce { comm: u32, root: u32, bytes: u64 },
    Allreduce { comm: u32, bytes: u64 },
    Allgather { comm: u32, bytes: u64 },
    Alltoall { comm: u32, bytes_per_peer: u64 },
    Alltoallv { comm: u32, send_counts: Vec<u64>, recv_counts: Vec<u64> },
    Gather { comm: u32, root: u32, bytes: u64 },
    Scatter { comm: u32, root: u32, bytes: u64 },
    Gatherv { comm: u32, root: u32, counts: Vec<u64> },
    Scatterv { comm: u32, root: u32, counts: Vec<u64> },
    Scan { comm: u32, bytes: u64 },
    ReduceScatterBlock { comm: u32, bytes_per_rank: u64 },
    CommSplit { parent: u32, color: i64, key: i64, result: Option<u32> },
    CommDup { parent: u32, result: u32 },
    CommFree { comm: u32 },
}

impl CommEvent {
    pub fn func_name(&self) -> &'static str {
        match self {
            CommEvent::Send { .. } => "MPI_Send",
            CommEvent::Recv { .. } => "MPI_Recv",
            CommEvent::Isend { .. } => "MPI_Isend",
            CommEvent::Irecv { .. } => "MPI_Irecv",
            CommEvent::Wait { .. } => "MPI_Wait",
            CommEvent::Waitall { .. } => "MPI_Waitall",
            CommEvent::Sendrecv { .. } => "MPI_Sendrecv",
            CommEvent::Barrier { .. } => "MPI_Barrier",
            CommEvent::Bcast { .. } => "MPI_Bcast",
            CommEvent::Reduce { .. } => "MPI_Reduce",
            CommEvent::Allreduce { .. } => "MPI_Allreduce",
            CommEvent::Allgather { .. } => "MPI_Allgather",
            CommEvent::Alltoall { .. } => "MPI_Alltoall",
            CommEvent::Alltoallv { .. } => "MPI_Alltoallv",
            CommEvent::Gather { .. } => "MPI_Gather",
            CommEvent::Scatter { .. } => "MPI_Scatter",
            CommEvent::Gatherv { .. } => "MPI_Gatherv",
            CommEvent::Scatterv { .. } => "MPI_Scatterv",
            CommEvent::Scan { .. } => "MPI_Scan",
            CommEvent::ReduceScatterBlock { .. } => "MPI_Reduce_scatter_block",
            CommEvent::CommSplit { .. } => "MPI_Comm_split",
            CommEvent::CommDup { .. } => "MPI_Comm_dup",
            CommEvent::CommFree { .. } => "MPI_Comm_free",
        }
    }
}

/// Aggregated measurements of one clustered computation event (one call of
/// the paper's virtual `MPI_Compute`).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeStats {
    /// The cluster representative: the first reading that opened the
    /// cluster. Membership tests compare against this, so a cluster cannot
    /// drift as it absorbs readings.
    pub repr: CounterVec,
    /// Sum of all counter readings that joined this cluster.
    pub sum: CounterVec,
    pub count: u64,
}

impl ComputeStats {
    pub fn new(first: CounterVec) -> ComputeStats {
        ComputeStats { repr: first, sum: first, count: 1 }
    }

    pub fn absorb(&mut self, reading: CounterVec) {
        self.sum += reading;
        self.count += 1;
    }

    pub fn absorb_stats(&mut self, other: &ComputeStats) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The representative counter target replayed for this event.
    pub fn mean(&self) -> CounterVec {
        self.sum / self.count as f64
    }
}

/// One entry of a (local or global) terminal table.
#[derive(Debug, Clone, PartialEq)]
pub enum EventRecord {
    Comm(CommEvent),
    Compute(ComputeStats),
}

impl EventRecord {
    pub fn is_comm(&self) -> bool {
        matches!(self, EventRecord::Comm(_))
    }
}

/// The clustering criterion (paper: "we set a threshold to cluster similar
/// computation events into one event"): two readings cluster when every
/// metric agrees within `threshold` relative difference. The symmetric
/// relative difference `|a−b| / max(a,b)` is used so the test does not
/// depend on which reading came first; metrics that are (near) zero on both
/// sides are ignored, while zero-vs-nonzero counts as maximally different.
pub fn counters_close(a: &CounterVec, b: &CounterVec, threshold: f64) -> bool {
    let aa = a.as_array();
    let bb = b.as_array();
    for i in 0..6 {
        let hi = aa[i].max(bb[i]);
        if hi < 1.0 {
            continue; // both essentially zero
        }
        if (aa[i] - bb[i]).abs() / hi > threshold {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_rank_round_trips() {
        for size in [2usize, 5, 16] {
            for me in 0..size {
                for peer in 0..size {
                    let rel = rel_rank(me, peer, size);
                    assert_eq!(abs_rank(me, rel, size), peer);
                }
            }
        }
    }

    #[test]
    fn neighbors_share_relative_encoding() {
        // Every rank sending to its +1 neighbor in a periodic ring of 8
        // produces the same relative rank.
        let rels: Vec<u32> = (0..8).map(|me| rel_rank(me, (me + 1) % 8, 8)).collect();
        assert!(rels.iter().all(|&r| r == 1));
    }

    #[test]
    fn counters_close_clusters_noisy_readings() {
        let base = CounterVec::new(1e6, 5e5, 3e5, 2e4, 1e5, 2e3);
        let noisy = base * 1.05; // 5% jitter
        assert!(counters_close(&base, &noisy, 0.15));
        assert!(counters_close(&noisy, &base, 0.15)); // symmetric
        // A 4x different reading must not cluster.
        assert!(!counters_close(&base, &(base * 4.0), 0.15));
    }

    #[test]
    fn counters_close_handles_zero_metrics() {
        let a = CounterVec::new(100.0, 50.0, 0.0, 0.0, 0.0, 0.0);
        let b = CounterVec::new(100.0, 50.0, 0.2, 0.0, 0.0, 0.0);
        assert!(counters_close(&a, &b, 0.15)); // sub-1 counts ignored
        // Zero vs significant is maximally different.
        let c = CounterVec::new(100.0, 50.0, 500.0, 0.0, 0.0, 0.0);
        assert!(!counters_close(&a, &c, 0.15));
    }

    #[test]
    fn counters_close_discriminates_single_metric_outliers() {
        // Identical everywhere except MSP: must not cluster (max-style
        // criterion, unlike a mean that would wash it out).
        let a = CounterVec::new(1e6, 5e5, 3e5, 2e4, 1e5, 1e3);
        let b = CounterVec::new(1e6, 5e5, 3e5, 2e4, 1e5, 5e3);
        assert!(!counters_close(&a, &b, 0.15));
    }

    #[test]
    fn compute_stats_mean() {
        let mut s = ComputeStats::new(CounterVec::new(10.0, 10.0, 10.0, 0.0, 0.0, 0.0));
        s.absorb(CounterVec::new(20.0, 20.0, 20.0, 0.0, 0.0, 0.0));
        assert_eq!(s.count, 2);
        assert_eq!(s.mean().ins, 15.0);
        // The representative stays at the first reading.
        assert_eq!(s.repr.ins, 10.0);
    }

    #[test]
    fn events_hash_structurally() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CommEvent::Send { rel: 1, tag: 0, bytes: 64, comm: 0 });
        assert!(set.contains(&CommEvent::Send { rel: 1, tag: 0, bytes: 64, comm: 0 }));
        assert!(!set.contains(&CommEvent::Send { rel: 2, tag: 0, bytes: 64, comm: 0 }));
    }
}
