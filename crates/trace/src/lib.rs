//! Trace recording for Siesta (paper Sections 2.2–2.3 and 2.6.1).
//!
//! The tracer is the PMPI side of the pipeline: a [`Recorder`] installed as
//! a [`siesta_mpisim::PmpiHook`] observes every application MPI call,
//! normalizes it (relative ranks, free-number pools for request and
//! communicator handles), measures the computation interval since the
//! previous call through the hardware-counter model, clusters similar
//! computation events, and hash-conses everything into per-rank event
//! tables. [`merge_tables`] then folds the per-rank tables into one global
//! terminal table with a ⌈log₂P⌉ binary reduction, producing the
//! [`GlobalTrace`] the grammar stage consumes.

//! ```
//! use std::sync::Arc;
//! use siesta_mpisim::World;
//! use siesta_perfmodel::{Machine, KernelDesc};
//! use siesta_trace::{Recorder, TraceConfig, merge_tables};
//!
//! let recorder = Arc::new(Recorder::new(4, TraceConfig::default()));
//! World::new(Machine::default_eval(), 4)
//!     .with_hook(recorder.clone())
//!     .run(|mut rank| Box::pin(async move {
//!         let comm = rank.comm_world();
//!         for _ in 0..3 {
//!             rank.compute(&KernelDesc::stencil(10_000.0, 4.0, 65536.0));
//!             rank.allreduce(&comm, 64).await;
//!         }
//!         rank
//!     }));
//! let global = merge_tables(recorder.finish());
//! // Four ranks, identical behaviour: two global terminals
//! // (one compute cluster + the allreduce), 6 events per rank.
//! assert!(global.table.len() <= 3);
//! assert!(global.seqs.iter().all(|s| s.len() == 6));
//! ```

pub mod event;
pub mod merge;
pub mod pool;
pub mod recorder;
pub mod serialize;
pub mod store;
pub mod text;
pub mod wire;

pub use event::{abs_rank, counters_close, rel_rank, CommEvent, ComputeStats, EventRecord};
pub use merge::{
    merge_rank_tables, merge_streamed, merge_tables, GlobalTrace, MergedTables, StreamedGlobal,
};
pub use pool::{FreePool, HandleMap};
pub use store::{store_to_bytes, write_store, StoreError, StoreWriter, TraceStore};
pub use wire::{load_trace, save_trace, trace_from_bytes, trace_to_bytes};
pub use recorder::{
    resolve_stream_buf, Normalizer, RankTraceData, Recorder, StreamedRank, StreamedTrace, Trace,
    TraceConfig, DEFAULT_STREAM_BUF, STREAM_BUF_MAX, STREAM_BUF_MIN,
};
