//! Human-readable trace rendering, in the spirit of mpiP's per-callsite
//! reports: one line per unique event plus per-rank sequence summaries.
//! Used by `siesta trace` for debugging workloads and the tracer itself.

use std::fmt::Write;

use crate::event::{CommEvent, EventRecord};
use crate::merge::GlobalTrace;

fn describe(e: &CommEvent) -> String {
    match e {
        CommEvent::Send { rel, tag, bytes, comm } => {
            format!("Send       rel=+{rel} tag={tag} bytes={bytes} comm={comm}")
        }
        CommEvent::Recv { rel, tag, bytes, comm } => {
            format!("Recv       rel=+{rel} tag={tag} bytes={bytes} comm={comm}")
        }
        CommEvent::Isend { rel, tag, bytes, comm, req } => {
            format!("Isend      rel=+{rel} tag={tag} bytes={bytes} comm={comm} req={req}")
        }
        CommEvent::Irecv { rel, tag, bytes, comm, req } => {
            format!("Irecv      rel=+{rel} tag={tag} bytes={bytes} comm={comm} req={req}")
        }
        CommEvent::Wait { req } => format!("Wait       req={req}"),
        CommEvent::Waitall { reqs } => format!("Waitall    reqs={reqs:?}"),
        CommEvent::Sendrecv { dest_rel, send_bytes, src_rel, recv_bytes, comm, .. } => {
            format!(
                "Sendrecv   to=+{dest_rel}({send_bytes}B) from=+{src_rel}({recv_bytes}B) comm={comm}"
            )
        }
        CommEvent::Barrier { comm } => format!("Barrier    comm={comm}"),
        CommEvent::Bcast { comm, root, bytes } => {
            format!("Bcast      root={root} bytes={bytes} comm={comm}")
        }
        CommEvent::Reduce { comm, root, bytes } => {
            format!("Reduce     root={root} bytes={bytes} comm={comm}")
        }
        CommEvent::Allreduce { comm, bytes } => format!("Allreduce  bytes={bytes} comm={comm}"),
        CommEvent::Allgather { comm, bytes } => format!("Allgather  bytes={bytes} comm={comm}"),
        CommEvent::Alltoall { comm, bytes_per_peer } => {
            format!("Alltoall   bytes/peer={bytes_per_peer} comm={comm}")
        }
        CommEvent::Alltoallv { comm, send_counts, .. } => {
            let total: u64 = send_counts.iter().sum();
            format!(
                "Alltoallv  peers={} total_send={total}B comm={comm}",
                send_counts.len()
            )
        }
        CommEvent::Gather { comm, root, bytes } => {
            format!("Gather     root={root} bytes={bytes} comm={comm}")
        }
        CommEvent::Scatter { comm, root, bytes } => {
            format!("Scatter    root={root} bytes={bytes} comm={comm}")
        }
        CommEvent::Gatherv { comm, root, counts } => {
            let total: u64 = counts.iter().sum();
            format!("Gatherv    root={root} total={total}B comm={comm}")
        }
        CommEvent::Scatterv { comm, root, counts } => {
            let total: u64 = counts.iter().sum();
            format!("Scatterv   root={root} total={total}B comm={comm}")
        }
        CommEvent::Scan { comm, bytes } => format!("Scan       bytes={bytes} comm={comm}"),
        CommEvent::ReduceScatterBlock { comm, bytes_per_rank } => {
            format!("RedScatBlk bytes/rank={bytes_per_rank} comm={comm}")
        }
        CommEvent::CommSplit { parent, color, key, result } => {
            format!("CommSplit  parent={parent} color={color} key={key} result={result:?}")
        }
        CommEvent::CommDup { parent, result } => {
            format!("CommDup    parent={parent} result={result}")
        }
        CommEvent::CommFree { comm } => format!("CommFree   comm={comm}"),
    }
}

/// Render a merged trace as text: the global terminal table with occurrence
/// counts, followed by per-rank sequence summaries.
pub fn render(trace: &GlobalTrace) -> String {
    let mut occurrences = vec![0u64; trace.table.len()];
    for seq in &trace.seqs {
        for &id in seq {
            occurrences[id as usize] += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "global terminal table ({} entries, {} ranks, {} total events, {} merge rounds)",
        trace.table.len(),
        trace.nranks,
        trace.seqs.iter().map(|s| s.len()).sum::<usize>(),
        trace.merge_rounds
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for (id, rec) in trace.table.iter().enumerate() {
        let line = match rec {
            EventRecord::Comm(e) => describe(e),
            EventRecord::Compute(s) => {
                let m = s.mean();
                format!(
                    "Compute    INS={:.3e} CYC={:.3e} LST={:.3e} DCM={:.3e} (n={})",
                    m.ins, m.cyc, m.lst, m.l1_dcm, s.count
                )
            }
        };
        let _ = writeln!(out, "t{id:<4} x{:<8} {line}", occurrences[id]);
    }
    let _ = writeln!(out, "{}", "-".repeat(78));
    for (rank, seq) in trace.seqs.iter().enumerate() {
        let head: Vec<String> = seq.iter().take(12).map(|id| format!("t{id}")).collect();
        let _ = writeln!(
            out,
            "rank {rank:<4} {} events: {}{}",
            seq.len(),
            head.join(" "),
            if seq.len() > 12 { " ..." } else { "" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ComputeStats;
    use crate::recorder::RankTraceData;
    use crate::recorder::Trace;
    use siesta_perfmodel::CounterVec;

    #[test]
    fn renders_table_and_sequences() {
        let trace = Trace {
            nranks: 2,
            ranks: vec![
                RankTraceData {
                    table: vec![
                        EventRecord::Comm(CommEvent::Allreduce { comm: 0, bytes: 64 }),
                        EventRecord::Compute(ComputeStats::new(CounterVec::new(
                            1e6, 2e6, 3e5, 1e4, 1e4, 100.0,
                        ))),
                    ],
                    seq: vec![1, 0, 1, 0],
                    raw_bytes: 100,
                },
                RankTraceData {
                    table: vec![EventRecord::Comm(CommEvent::Allreduce { comm: 0, bytes: 64 })],
                    seq: vec![0, 0],
                    raw_bytes: 50,
                },
            ],
        };
        let global = crate::merge::merge_tables(trace);
        let text = render(&global);
        assert!(text.contains("Allreduce  bytes=64"));
        assert!(text.contains("Compute"));
        assert!(text.contains("rank 0"));
        assert!(text.contains("rank 1"));
        // Occurrence counts: allreduce appears 4 times total.
        assert!(text.contains("x4"), "{text}");
    }

    #[test]
    fn describe_covers_every_variant() {
        // Smoke-test the printer on one of each.
        let events = vec![
            CommEvent::Send { rel: 1, tag: 0, bytes: 8, comm: 0 },
            CommEvent::Wait { req: 0 },
            CommEvent::Alltoallv { comm: 0, send_counts: vec![1, 2], recv_counts: vec![2, 1] },
            CommEvent::Gatherv { comm: 0, root: 0, counts: vec![3, 4] },
            CommEvent::Scan { comm: 0, bytes: 8 },
            CommEvent::ReduceScatterBlock { comm: 0, bytes_per_rank: 8 },
            CommEvent::CommSplit { parent: 0, color: 1, key: 2, result: Some(1) },
        ];
        for e in events {
            assert!(!describe(&e).is_empty());
        }
    }
}
