//! Property-based tests for the tracing layer.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_perfmodel::CounterVec;
use siesta_trace::{abs_rank, counters_close, rel_rank, FreePool, HandleMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Relative-rank encoding round-trips for any (me, peer, size).
    #[test]
    fn rel_rank_round_trips(size in 1usize..600, me_raw in 0usize..600, peer_raw in 0usize..600) {
        let me = me_raw % size;
        let peer = peer_raw % size;
        let rel = rel_rank(me, peer, size);
        prop_assert!((rel as usize) < size);
        prop_assert_eq!(abs_rank(me, rel, size), peer);
    }

    /// Two ranks at the same offset from their targets produce the same
    /// relative encoding — the property compression relies on.
    #[test]
    fn same_offset_same_encoding(size in 2usize..600, a in 0usize..600, b in 0usize..600, d in 0usize..600) {
        let a = a % size;
        let b = b % size;
        let d = d % size;
        prop_assert_eq!(
            rel_rank(a, (a + d) % size, size),
            rel_rank(b, (b + d) % size, size)
        );
    }

    /// The free pool behaves like "always allocate the smallest free
    /// number": model it against a BTreeSet.
    #[test]
    fn free_pool_matches_model(ops in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let mut pool = FreePool::new();
        let mut live: Vec<u32> = Vec::new();
        let mut model_free: std::collections::BTreeSet<u32> = Default::default();
        let mut model_next: u32 = 0;
        for alloc in ops {
            if alloc || live.is_empty() {
                let expected = model_free.pop_first().unwrap_or_else(|| {
                    let n = model_next;
                    model_next += 1;
                    n
                });
                let got = pool.alloc();
                prop_assert_eq!(got, expected);
                live.push(got);
            } else {
                // Release the most recently allocated live number.
                let n = live.pop().unwrap();
                pool.release(n);
                model_free.insert(n);
            }
        }
        prop_assert_eq!(pool.live(), live.len());
    }

    /// Handle normalization is history-deterministic: the pool ids depend
    /// only on the *sequence* of bind/unbind, never on the handle values.
    #[test]
    fn handle_map_is_value_independent(
        script in prop::collection::vec(prop::bool::ANY, 1..100),
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
    ) {
        let run = |salt: u64| -> Vec<u32> {
            let mut m: HandleMap<u64> = HandleMap::new();
            let mut live: Vec<u64> = Vec::new();
            let mut next_handle = 0u64;
            let mut out = Vec::new();
            for bind in &script {
                if *bind || live.is_empty() {
                    // A "runtime" handle value that depends on the salt.
                    let h = salt.wrapping_mul(6364136223846793005).wrapping_add(next_handle);
                    next_handle += 1;
                    live.push(h);
                    out.push(m.bind(h));
                } else {
                    let h = live.pop().unwrap();
                    out.push(m.unbind(h).unwrap());
                }
            }
            out
        };
        prop_assert_eq!(run(salt_a), run(salt_b));
    }

    /// `counters_close` is reflexive and symmetric, tolerates jitter below
    /// the threshold, and rejects scaling beyond it.
    #[test]
    fn counters_close_properties(
        base in prop::collection::vec(1000.0f64..1e9, 6),
        factor in 1.0f64..3.0,
    ) {
        let a = CounterVec::from_array([base[0], base[1], base[2], base[3], base[4], base[5]]);
        prop_assert!(counters_close(&a, &a, 0.15));
        let scaled = a * factor;
        let close_ab = counters_close(&a, &scaled, 0.15);
        let close_ba = counters_close(&scaled, &a, 0.15);
        prop_assert_eq!(close_ab, close_ba);
        // |a - fa| / max = 1 - 1/f; within threshold iff f <= 1/(1-t).
        let expected = (1.0 - 1.0 / factor) <= 0.15 + 1e-12;
        prop_assert_eq!(close_ab, expected, "factor {}", factor);
    }
}
