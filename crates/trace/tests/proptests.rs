//! Property-based tests for the tracing layer.

#![cfg(feature = "proptest-tests")]
// Gated: the `proptest` dev-dependency is not vendored (no registry access
// in the default build environment). The nightly CI job runs this suite via
// `scripts/proptests.sh`, which adds the dependency on the fly; run the same
// script locally. On failure, proptest logs the shrunken counterexample plus
// its seed and persists it under this crate's proptest-regressions/ — commit
// that file with the fix so the case replays forever (see tests/README.md).

use proptest::prelude::*;

use siesta_perfmodel::CounterVec;
use siesta_trace::{
    abs_rank, counters_close, rel_rank, store_to_bytes, CommEvent, ComputeStats, EventRecord,
    FreePool, GlobalTrace, HandleMap, StoreWriter, TraceStore,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Relative-rank encoding round-trips for any (me, peer, size).
    #[test]
    fn rel_rank_round_trips(size in 1usize..600, me_raw in 0usize..600, peer_raw in 0usize..600) {
        let me = me_raw % size;
        let peer = peer_raw % size;
        let rel = rel_rank(me, peer, size);
        prop_assert!((rel as usize) < size);
        prop_assert_eq!(abs_rank(me, rel, size), peer);
    }

    /// Two ranks at the same offset from their targets produce the same
    /// relative encoding — the property compression relies on.
    #[test]
    fn same_offset_same_encoding(size in 2usize..600, a in 0usize..600, b in 0usize..600, d in 0usize..600) {
        let a = a % size;
        let b = b % size;
        let d = d % size;
        prop_assert_eq!(
            rel_rank(a, (a + d) % size, size),
            rel_rank(b, (b + d) % size, size)
        );
    }

    /// The free pool behaves like "always allocate the smallest free
    /// number": model it against a BTreeSet.
    #[test]
    fn free_pool_matches_model(ops in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let mut pool = FreePool::new();
        let mut live: Vec<u32> = Vec::new();
        let mut model_free: std::collections::BTreeSet<u32> = Default::default();
        let mut model_next: u32 = 0;
        for alloc in ops {
            if alloc || live.is_empty() {
                let expected = model_free.pop_first().unwrap_or_else(|| {
                    let n = model_next;
                    model_next += 1;
                    n
                });
                let got = pool.alloc();
                prop_assert_eq!(got, expected);
                live.push(got);
            } else {
                // Release the most recently allocated live number.
                let n = live.pop().unwrap();
                pool.release(n);
                model_free.insert(n);
            }
        }
        prop_assert_eq!(pool.live(), live.len());
    }

    /// Handle normalization is history-deterministic: the pool ids depend
    /// only on the *sequence* of bind/unbind, never on the handle values.
    #[test]
    fn handle_map_is_value_independent(
        script in prop::collection::vec(prop::bool::ANY, 1..100),
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
    ) {
        let run = |salt: u64| -> Vec<u32> {
            let mut m: HandleMap<u64> = HandleMap::new();
            let mut live: Vec<u64> = Vec::new();
            let mut next_handle = 0u64;
            let mut out = Vec::new();
            for bind in &script {
                if *bind || live.is_empty() {
                    // A "runtime" handle value that depends on the salt.
                    let h = salt.wrapping_mul(6364136223846793005).wrapping_add(next_handle);
                    next_handle += 1;
                    live.push(h);
                    out.push(m.bind(h));
                } else {
                    let h = live.pop().unwrap();
                    out.push(m.unbind(h).unwrap());
                }
            }
            out
        };
        prop_assert_eq!(run(salt_a), run(salt_b));
    }

    /// `counters_close` is reflexive and symmetric, tolerates jitter below
    /// the threshold, and rejects scaling beyond it.
    #[test]
    fn counters_close_properties(
        base in prop::collection::vec(1000.0f64..1e9, 6),
        factor in 1.0f64..3.0,
    ) {
        let a = CounterVec::from_array([base[0], base[1], base[2], base[3], base[4], base[5]]);
        prop_assert!(counters_close(&a, &a, 0.15));
        let scaled = a * factor;
        let close_ab = counters_close(&a, &scaled, 0.15);
        let close_ba = counters_close(&scaled, &a, 0.15);
        prop_assert_eq!(close_ab, close_ba);
        // |a - fa| / max = 1 - 1/f; within threshold iff f <= 1/(1-t).
        let expected = (1.0 - 1.0 / factor) <= 0.15 + 1e-12;
        prop_assert_eq!(close_ab, expected, "factor {}", factor);
    }
}

/// One arbitrary terminal-table entry, covering fixed-size comm payloads,
/// variable-length comm payloads (request lists, per-peer count vectors),
/// and compute clusters with exact f64 counter state.
fn arb_event() -> impl Strategy<Value = EventRecord> {
    prop_oneof![
        (0u32..64, 0i32..100, 0u64..1_000_000, 0u32..4)
            .prop_map(|(rel, tag, bytes, comm)| EventRecord::Comm(CommEvent::Send {
                rel,
                tag,
                bytes,
                comm
            })),
        (0u32..64, 0i32..100, 0u64..1_000_000, 0u32..4, 0u32..8).prop_map(
            |(rel, tag, bytes, comm, req)| EventRecord::Comm(CommEvent::Irecv {
                rel,
                tag,
                bytes,
                comm,
                req
            })
        ),
        prop::collection::vec(0u32..16, 0..6)
            .prop_map(|reqs| EventRecord::Comm(CommEvent::Waitall { reqs })),
        (0u32..4, 0u64..1_000_000)
            .prop_map(|(comm, bytes)| EventRecord::Comm(CommEvent::Allreduce { comm, bytes })),
        (
            0u32..4,
            prop::collection::vec(0u64..4096, 0..5),
            prop::collection::vec(0u64..4096, 0..5)
        )
            .prop_map(|(comm, send_counts, recv_counts)| EventRecord::Comm(
                CommEvent::Alltoallv { comm, send_counts, recv_counts }
            )),
        (
            prop::collection::vec(0.0f64..1e9, 6),
            prop::collection::vec(0.0f64..1e9, 6),
            1u64..50
        )
            .prop_map(|(r, s, count)| {
                let mut st =
                    ComputeStats::new(CounterVec::from_array([r[0], r[1], r[2], r[3], r[4], r[5]]));
                st.sum = CounterVec::from_array([s[0], s[1], s[2], s[3], s[4], s[5]]);
                st.count = count;
                EventRecord::Compute(st)
            }),
    ]
}

/// An arbitrary global trace: a table that may contain duplicate entries
/// (the payload pool interns them; the refs column must still round-trip
/// them as distinct ids) and per-rank id sequences of uneven lengths,
/// including empty ranks.
fn arb_trace() -> impl Strategy<Value = GlobalTrace> {
    (prop::collection::vec(arb_event(), 1..12), 1usize..6, 0usize..10_000_000, 0u32..8).prop_flat_map(
        |(table, nranks, raw_bytes, merge_rounds)| {
            let n = table.len() as u32;
            prop::collection::vec(prop::collection::vec(0..n, 0..200), nranks..=nranks).prop_map(
                move |seqs| GlobalTrace {
                    nranks,
                    table: table.clone(),
                    seqs,
                    raw_bytes,
                    merge_rounds,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary traces survive the columnar store byte-exactly: header
    /// fields, the full terminal table (comm payloads, duplicate entries,
    /// exact compute-cluster f64 state), and every rank's id sequence.
    #[test]
    fn store_round_trips(t in arb_trace()) {
        let store = TraceStore::from_bytes(store_to_bytes(&t)).expect("parse");
        let back = store.to_global_trace().expect("decode");
        prop_assert_eq!(back.nranks, t.nranks);
        prop_assert_eq!(back.merge_rounds, t.merge_rounds);
        prop_assert_eq!(back.raw_bytes, t.raw_bytes);
        prop_assert_eq!(back.table, t.table);
        prop_assert_eq!(back.seqs, t.seqs);
    }

    /// The reader reassembles identical sequences regardless of how the
    /// writer chunked them — the property that lets the streaming path
    /// flush whenever its bounded buffer fills.
    #[test]
    fn store_chunking_is_reader_invariant(t in arb_trace(), cut in 1usize..64) {
        let mut w = StoreWriter::new(
            Vec::new(), t.nranks, t.merge_rounds, t.raw_bytes, &t.table,
        ).unwrap();
        for (rank, seq) in t.seqs.iter().enumerate() {
            for piece in seq.chunks(cut) {
                w.append_chunk(rank as u32, piece).unwrap();
            }
        }
        let store = TraceStore::from_bytes(w.finish().unwrap()).expect("parse");
        prop_assert_eq!(store.nranks(), t.nranks);
        for (rank, seq) in t.seqs.iter().enumerate() {
            prop_assert_eq!(&store.seq(rank), seq);
        }
    }

    /// Any strict prefix of a valid store is rejected with an error —
    /// never accepted, never a panic. Covers cuts inside the header,
    /// columns, pool, chunk headers, id payloads, and the footer.
    #[test]
    fn store_rejects_any_truncation(t in arb_trace(), frac in 0.0f64..1.0) {
        let bytes = store_to_bytes(&t);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(TraceStore::from_bytes(bytes[..cut].to_vec()).is_err());
    }

    /// A single-bit flip anywhere in the file must never cause a panic or
    /// an out-of-bounds access: either the structural walk rejects the
    /// bytes, or every decode entry point still touches only validated
    /// ranges (flips in dead padding or the free-form `raw_bytes` field
    /// legitimately parse).
    #[test]
    fn store_never_panics_on_corruption(
        t in arb_trace(),
        pos_raw in any::<usize>(),
        bit in 0u32..8,
    ) {
        let mut bytes = store_to_bytes(&t);
        let pos = pos_raw % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        if let Ok(store) = TraceStore::from_bytes(bytes) {
            let _ = store.table();
            for rank in 0..store.nranks() {
                let _ = store.seq_len(rank);
                let _ = store.seq(rank);
            }
            let _ = store.to_global_trace();
        }
    }
}
