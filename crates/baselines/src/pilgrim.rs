//! Pilgrim-like baseline (Wang, Balaji, Snir — SC'21 / TPDS'23).
//!
//! Pilgrim is a near-lossless, grammar-based MPI *communication* tracer
//! with proxy-app generation. Its key property for the paper's comparison
//! (Section 3.4.1): it replays communication faithfully but "only focuses
//! on compression and replay of communication information, without filling
//! in the execution time of the computation part" — so its proxy-apps
//! under-run the original wall time badly (the paper measures 84.30% mean
//! error).
//!
//! We model it as the Siesta pipeline with every computation terminal
//! replaced by an idle (zero-work) proxy.

use siesta_codegen::{ProxyProgram, TerminalOp};
use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::{Rank, RankFut};
use siesta_perfmodel::{CounterVec, Machine};
use siesta_proxy::ComputeProxy;
use siesta_trace::Trace;

/// Generate a Pilgrim-style comm-only proxy from a trace.
pub fn synthesize(trace: Trace, gen_machine: &Machine) -> ProxyProgram {
    let siesta = Siesta::new(SiestaConfig::default());
    let mut synthesis = siesta.synthesize(trace, gen_machine);
    for t in synthesis.program.terminals.iter_mut() {
        if let TerminalOp::Compute { proxy, target } = t {
            *proxy = ComputeProxy::IDLE;
            *target = CounterVec::ZERO;
        }
    }
    synthesis.program
}

/// Trace a program and generate the comm-only proxy in one step.
pub fn trace_and_synthesize<'env, F>(machine: Machine, nranks: usize, body: F) -> ProxyProgram
where
    F: Fn(Rank) -> RankFut<'env> + Send + Sync,
{
    let siesta = Siesta::new(SiestaConfig::default());
    let (trace, _) = siesta.trace_run(machine, nranks, body);
    synthesize(trace, &machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_codegen::replay;
    use siesta_perfmodel::{platform_a, MpiFlavor};
    use siesta_workloads::{ProblemSize, Program};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn pilgrim_replays_comm_but_ignores_compute_time() {
        let m = machine();
        let program = Program::Bt;
        let original = program.run(m, 9, ProblemSize::Tiny);
        let proxy = trace_and_synthesize(m, 9, program.body(ProblemSize::Tiny));
        let stats = replay(&proxy, m);
        // Comm structure intact: the run completes with the same call mix.
        assert!(stats.elapsed_ns() > 0.0);
        // But the time is way short of the original — the 84.30% claim.
        let err = stats.time_error(&original);
        assert!(
            err > 0.4,
            "pilgrim-like proxy should badly under-run: error only {:.1}%",
            err * 100.0
        );
        // And it performs (almost) no computation.
        let compute: f64 = stats.per_rank.iter().map(|r| r.compute_ns).sum();
        let orig_compute: f64 = original.per_rank.iter().map(|r| r.compute_ns).sum();
        assert!(compute < 0.05 * orig_compute);
    }

    #[test]
    fn pilgrim_keeps_comm_terminals_intact() {
        let m = machine();
        let program = Program::Is;
        let siesta = Siesta::new(SiestaConfig::default());
        let (trace, _) = siesta.trace_run(m, 8, program.body(ProblemSize::Tiny));
        let (trace2, _) = siesta.trace_run(m, 8, program.body(ProblemSize::Tiny));
        let full = siesta.synthesize(trace, &m).program;
        let comm_only = synthesize(trace2, &m);
        let comms = |p: &ProxyProgram| {
            p.terminals
                .iter()
                .filter(|t| t.is_comm())
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(comms(&full), comms(&comm_only));
    }
}
