//! ScalaBench-like baseline (Wu, Deshpande, Mueller — IPDPS 2012, built on
//! ScalaTrace v4).
//!
//! ScalaBench generates proxy-apps from ScalaTrace's RSD-compressed traces.
//! Its design choices — the exact ones the paper's comparison targets — are:
//!
//! * **Greedy RSD loop compression with relaxed matching**: repeated call
//!   sequences fold into loops, and calls match on their *shape* (function,
//!   partner, tag, communicator) while parameter values (volumes) are
//!   pooled into histograms. Replay draws a representative volume, so "the
//!   communication mode of the original program cannot be completely
//!   restored" (Section 3.4.2).
//! * **Sleep-based computation replay**: computation intervals are recorded
//!   as wall-time gaps on the generation platform and replayed as fixed
//!   sleeps — so proxy time does not move when the platform changes
//!   (Figures 8–9's "execution time of ScalaBench is almost unchanged").
//! * **No communicator management**: programs that split or duplicate
//!   communicators (the FLASH family) are rejected at generation time, as
//!   the paper reports ("ScalaBench gets crashed ... for certain programs").

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use std::sync::Mutex;
use siesta_mpisim::{
    Communicator, HookCtx, MpiCall, PmpiHook, Rank, RankFut, Request, RunStats, World,
};
use siesta_perfmodel::Machine;
use siesta_trace::{abs_rank, CommEvent, Normalizer};

/// Why generation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The trace uses a feature the tool cannot replay.
    Unsupported(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Unsupported(what) => {
                write!(f, "ScalaBench-like generation failed: unsupported {what}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

// ---------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------

struct RawEvent {
    event: CommEvent,
    /// Computation gap preceding this call, in wall-clock nanoseconds on
    /// the generation platform.
    gap_ns: f64,
}

#[derive(Default)]
struct RankLog {
    events: Vec<RawEvent>,
    normalizer: Option<Normalizer>,
    last_clock: f64,
    last_mpi_exit: f64,
    unsupported: Option<String>,
}

struct ScalaRecorder {
    per_rank: Vec<Mutex<RankLog>>,
}

impl PmpiHook for ScalaRecorder {
    fn pre(&self, ctx: &HookCtx, _call: &MpiCall) {
        let mut log = self.per_rank[ctx.rank].lock().unwrap();
        // Gap = time since the previous MPI call returned.
        log.last_clock = ctx.clock_ns;
    }

    fn post(&self, ctx: &HookCtx, call: &MpiCall) {
        let mut log = self.per_rank[ctx.rank].lock().unwrap();
        if log.normalizer.is_none() {
            log.normalizer = Some(Normalizer::new());
        }
        if log.unsupported.is_some() {
            return;
        }
        if matches!(
            call,
            MpiCall::CommSplit { .. } | MpiCall::CommDup { .. } | MpiCall::CommFree { .. }
        ) {
            log.unsupported = Some(format!("communicator management ({})", call.func_name()));
            return;
        }
        let gap_ns = (log.last_clock - log.last_mpi_exit).max(0.0);
        log.last_mpi_exit = ctx.clock_ns;
        let mut norm = log.normalizer.take().expect("initialized above");
        let event = norm.normalize(ctx, call);
        log.normalizer = Some(norm);
        log.events.push(RawEvent { event, gap_ns });
    }

    fn overhead_ns(&self) -> f64 {
        400.0 // no counter reads, only timestamps and records
    }
}

// ---------------------------------------------------------------------
// Volume histograms and shapes
// ---------------------------------------------------------------------

/// ScalaTrace-style parameter histogram: volumes land in power-of-two
/// bins, and replay draws the *bin center* — even a constant volume replays
/// as its bin's representative, which is the histogram step that keeps the
/// original communication from being "completely restored" (Section 3.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHist {
    bins: [u32; 48],
    pub min: u64,
    pub max: u64,
}

impl ValueHist {
    fn of(v: u64) -> ValueHist {
        let mut h = ValueHist { bins: [0; 48], min: v, max: v };
        h.bins[Self::bin(v)] = 1;
        h
    }

    fn bin(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(47)
        }
    }

    fn merge(&mut self, other: &ValueHist) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Center of the most-populated bin (ties: smaller bin).
    pub fn representative(&self) -> u64 {
        let best = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if best == 0 {
            0
        } else {
            // Bin `k` holds [2^(k−1), 2^k); its center is 1.5·2^(k−1).
            3u64 << (best - 1) >> 1
        }
    }

    /// True when replay will not reproduce the recorded volumes exactly.
    pub fn lossy(&self) -> bool {
        self.min != self.max || self.representative() != self.min
    }
}

#[derive(Debug, Clone, PartialEq)]
struct FloatStat {
    sum: f64,
    count: u64,
}

impl FloatStat {
    fn of(v: f64) -> FloatStat {
        FloatStat { sum: v, count: 1 }
    }
    fn merge(&mut self, o: &FloatStat) {
        self.sum += o.sum;
        self.count += o.count;
    }
    fn mean(&self) -> f64 {
        self.sum / self.count.max(1) as f64
    }
}

/// The volume fields of an event, in a canonical order.
fn volumes_of(e: &CommEvent) -> Vec<u64> {
    match e {
        CommEvent::Send { bytes, .. }
        | CommEvent::Recv { bytes, .. }
        | CommEvent::Isend { bytes, .. }
        | CommEvent::Irecv { bytes, .. }
        | CommEvent::Bcast { bytes, .. }
        | CommEvent::Reduce { bytes, .. }
        | CommEvent::Allreduce { bytes, .. }
        | CommEvent::Allgather { bytes, .. }
        | CommEvent::Gather { bytes, .. }
        | CommEvent::Scatter { bytes, .. } => vec![*bytes],
        CommEvent::Alltoall { bytes_per_peer, .. } => vec![*bytes_per_peer],
        CommEvent::Sendrecv { send_bytes, recv_bytes, .. } => vec![*send_bytes, *recv_bytes],
        CommEvent::Alltoallv { send_counts, recv_counts, .. } => {
            let mut v = send_counts.clone();
            v.extend_from_slice(recv_counts);
            v
        }
        CommEvent::Gatherv { counts, .. } | CommEvent::Scatterv { counts, .. } => counts.clone(),
        CommEvent::Scan { bytes, .. } => vec![*bytes],
        CommEvent::ReduceScatterBlock { bytes_per_rank, .. } => vec![*bytes_per_rank],
        _ => vec![],
    }
}

/// Rebuild an event from a shape and representative volumes.
fn with_volumes(shape: &CommEvent, vols: &[u64]) -> CommEvent {
    let mut e = shape.clone();
    match &mut e {
        CommEvent::Send { bytes, .. }
        | CommEvent::Recv { bytes, .. }
        | CommEvent::Isend { bytes, .. }
        | CommEvent::Irecv { bytes, .. }
        | CommEvent::Bcast { bytes, .. }
        | CommEvent::Reduce { bytes, .. }
        | CommEvent::Allreduce { bytes, .. }
        | CommEvent::Allgather { bytes, .. }
        | CommEvent::Gather { bytes, .. }
        | CommEvent::Scatter { bytes, .. } => *bytes = vols[0],
        CommEvent::Alltoall { bytes_per_peer, .. } => *bytes_per_peer = vols[0],
        CommEvent::Sendrecv { send_bytes, recv_bytes, .. } => {
            *send_bytes = vols[0];
            *recv_bytes = vols[1];
        }
        CommEvent::Alltoallv { send_counts, recv_counts, .. } => {
            let n = send_counts.len();
            send_counts.copy_from_slice(&vols[..n]);
            recv_counts.copy_from_slice(&vols[n..]);
        }
        CommEvent::Gatherv { counts, .. } | CommEvent::Scatterv { counts, .. } => {
            counts.copy_from_slice(vols);
        }
        CommEvent::Scan { bytes, .. } => *bytes = vols[0],
        CommEvent::ReduceScatterBlock { bytes_per_rank, .. } => *bytes_per_rank = vols[0],
        _ => {}
    }
    e
}

/// The matching shape: the event with volumes zeroed. Relaxed matching is
/// what lets RSDs fold iterations whose only difference is message size.
fn shape_of(e: &CommEvent) -> CommEvent {
    let vols = volumes_of(e);
    with_volumes(e, &vec![0; vols.len()])
}

// ---------------------------------------------------------------------
// RSD program
// ---------------------------------------------------------------------

/// One compressed slot: an event shape plus pooled parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    shape: CommEvent,
    vols: Vec<ValueHist>,
    gap: FloatStat,
}

/// A regular-section-descriptor item.
#[derive(Debug, Clone, PartialEq)]
pub enum RsdItem {
    Ev(Slot),
    Loop { body: Vec<RsdItem>, count: u64 },
}

impl RsdItem {
    fn same_shape(&self, other: &RsdItem) -> bool {
        match (self, other) {
            (RsdItem::Ev(a), RsdItem::Ev(b)) => a.shape == b.shape,
            (RsdItem::Loop { body: a, count: ca }, RsdItem::Loop { body: b, count: cb }) => {
                // Loops match structurally when their bodies match; counts
                // merge (ScalaTrace's iteration pooling).
                ca == cb
                    && a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.same_shape(y))
            }
            _ => false,
        }
    }

    fn merge_from(&mut self, other: &RsdItem) {
        match (self, other) {
            (RsdItem::Ev(a), RsdItem::Ev(b)) => {
                for (h, o) in a.vols.iter_mut().zip(&b.vols) {
                    h.merge(o);
                }
                a.gap.merge(&b.gap);
            }
            (RsdItem::Loop { body: a, .. }, RsdItem::Loop { body: b, .. }) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge_from(y);
                }
            }
            _ => unreachable!("merge_from called on mismatched shapes"),
        }
    }

    fn len_items(&self) -> usize {
        match self {
            RsdItem::Ev(_) => 1,
            RsdItem::Loop { body, .. } => 1 + body.iter().map(|i| i.len_items()).sum::<usize>(),
        }
    }
}

/// Longest repeat window the greedy folder considers.
const MAX_WINDOW: usize = 64;

/// Greedy online tandem-repeat folding, ScalaTrace style: after each push,
/// try to fold the tail `[..w][..w]` into a loop for the smallest matching
/// window.
fn compress(events: Vec<RawEvent>) -> Vec<RsdItem> {
    let mut out: Vec<RsdItem> = Vec::new();
    for raw in events {
        let vols = volumes_of(&raw.event).iter().map(|&v| ValueHist::of(v)).collect();
        out.push(RsdItem::Ev(Slot {
            shape: shape_of(&raw.event),
            vols,
            gap: FloatStat::of(raw.gap_ns),
        }));
        fold_tail(&mut out);
    }
    out
}

fn fold_tail(out: &mut Vec<RsdItem>) {
    loop {
        let mut folded = false;
        // Tandem folds (case 1) need 2w items; loop extension (case 3)
        // needs only w+1, so the window range must not be halved.
        for w in 1..=MAX_WINDOW.min(out.len().saturating_sub(1)) {
            let n = out.len();
            if n >= 2 * w {
                let (head, tail) = out.split_at(n - w);
                let prev = &head[head.len() - w..];
                if prev.iter().zip(tail).all(|(a, b)| a.same_shape(b)) {
                    let tail_items: Vec<RsdItem> = out.drain(n - w..).collect();
                    let prev_start = out.len() - w;
                    // Merge tail statistics into prev, then wrap prev into a
                    // loop (or bump its count when prev is itself one loop).
                    let mut merged: Vec<RsdItem> = out.drain(prev_start..).collect();
                    for (m, t) in merged.iter_mut().zip(&tail_items) {
                        m.merge_from(t);
                    }
                    if merged.len() == 1 {
                        if let RsdItem::Loop { count, .. } = &mut merged[0] {
                            *count *= 2;
                            out.push(merged.pop().expect("one item"));
                            folded = true;
                            break;
                        }
                    }
                    out.push(RsdItem::Loop { body: merged, count: 2 });
                    folded = true;
                    break;
                }
            }
            // Case 3: the item(s) before the tail form a loop whose body
            // matches the tail → increment the loop count.
            if n > w {
                let tail_matches = {
                    let (head, tail) = out.split_at(n - w);
                    let loop_pos = head.len() - 1;
                    match &head[loop_pos] {
                        RsdItem::Loop { body, .. } => {
                            body.len() == w
                                && body.iter().zip(tail).all(|(a, b)| a.same_shape(b))
                        }
                        _ => false,
                    }
                };
                if tail_matches {
                    let tail_items: Vec<RsdItem> = out.drain(n - w..).collect();
                    let loop_pos = out.len() - 1;
                    if let RsdItem::Loop { body, count } = &mut out[loop_pos] {
                        for (m, t) in body.iter_mut().zip(&tail_items) {
                            m.merge_from(t);
                        }
                        *count += 1;
                    }
                    folded = true;
                    break;
                }
            }
        }
        if !folded {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// The generated app
// ---------------------------------------------------------------------

/// A generated ScalaBench-style proxy-app: one RSD program per rank.
#[derive(Debug, Clone)]
pub struct ScalaApp {
    pub nranks: usize,
    programs: Vec<Vec<RsdItem>>,
}

impl ScalaApp {
    /// Compressed item count across ranks (a size diagnostic).
    pub fn total_items(&self) -> usize {
        self.programs.iter().flat_map(|p| p.iter()).map(|i| i.len_items()).sum()
    }

    /// Render one rank's RSD structure (debugging aid).
    pub fn debug_structure(&self, rank: usize) -> String {
        fn render(item: &RsdItem, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match item {
                RsdItem::Ev(s) => out.push_str(&format!("{pad}{}\n", s.shape.func_name())),
                RsdItem::Loop { body, count } => {
                    out.push_str(&format!("{pad}loop x{count} [\n"));
                    for i in body {
                        render(i, depth + 1, out);
                    }
                    out.push_str(&format!("{pad}]\n"));
                }
            }
        }
        let mut out = String::new();
        for item in &self.programs[rank] {
            render(item, 0, &mut out);
        }
        out
    }

    /// Does any pooled volume differ from the original (information loss)?
    pub fn is_lossy(&self) -> bool {
        fn item_lossy(i: &RsdItem) -> bool {
            match i {
                RsdItem::Ev(s) => s.vols.iter().any(|h| h.lossy()),
                RsdItem::Loop { body, .. } => body.iter().any(item_lossy),
            }
        }
        self.programs.iter().flat_map(|p| p.iter()).any(item_lossy)
    }

    /// Replay on a machine. Computation gaps replay as fixed sleeps
    /// (recorded on the generation platform), communication replays with
    /// histogram-representative volumes.
    pub fn replay(&self, machine: Machine) -> RunStats {
        World::new(machine, self.nranks).run(|mut rank| {
            Box::pin(async move {
                let items = &self.programs[rank.rank()];
                let mut ctx = ReplayCtx {
                    world: rank.comm_world(),
                    reqs: std::collections::HashMap::new(),
                };
                for item in items {
                    replay_item(&mut rank, item, &mut ctx).await;
                }
                rank
            })
        })
    }
}

struct ReplayCtx {
    world: Communicator,
    reqs: std::collections::HashMap<u32, Request>,
}

/// RSD loops nest, and async fns cannot recurse without indirection, so
/// each level returns a boxed future.
fn replay_item<'a>(
    rank: &'a mut Rank,
    item: &'a RsdItem,
    ctx: &'a mut ReplayCtx,
) -> Pin<Box<dyn Future<Output = ()> + Send + 'a>> {
    Box::pin(async move {
        match item {
            RsdItem::Loop { body, count } => {
                for _ in 0..*count {
                    for i in body {
                        replay_item(rank, i, ctx).await;
                    }
                }
            }
            RsdItem::Ev(slot) => {
                rank.sleep_ns(slot.gap.mean());
                let vols: Vec<u64> = slot.vols.iter().map(|h| h.representative()).collect();
                let event = with_volumes(&slot.shape, &vols);
                replay_event(rank, &event, ctx).await;
            }
        }
    })
}

async fn replay_event(rank: &mut Rank, e: &CommEvent, ctx: &mut ReplayCtx) {
    let c = ctx.world.clone();
    match e {
        CommEvent::Send { rel, tag, bytes, .. } => {
            let dest = abs_rank(c.rank(), *rel, c.size());
            rank.send(&c, dest, *tag, *bytes as usize).await;
        }
        CommEvent::Recv { rel, tag, bytes, .. } => {
            let src = abs_rank(c.rank(), *rel, c.size());
            rank.recv(&c, src, *tag, *bytes as usize).await;
        }
        CommEvent::Isend { rel, tag, bytes, req, .. } => {
            let dest = abs_rank(c.rank(), *rel, c.size());
            let r = rank.isend(&c, dest, *tag, *bytes as usize);
            ctx.reqs.insert(*req, r);
        }
        CommEvent::Irecv { rel, tag, bytes, req, .. } => {
            let src = abs_rank(c.rank(), *rel, c.size());
            let r = rank.irecv(&c, src, *tag, *bytes as usize);
            ctx.reqs.insert(*req, r);
        }
        CommEvent::Wait { req } => {
            let r = ctx.reqs.remove(req).expect("scalabench wait");
            rank.wait(r).await;
        }
        CommEvent::Waitall { reqs } => {
            let rs: Vec<Request> = reqs
                .iter()
                .map(|id| ctx.reqs.remove(id).expect("scalabench waitall"))
                .collect();
            rank.waitall(&rs).await;
        }
        CommEvent::Sendrecv {
            dest_rel,
            send_tag,
            send_bytes,
            src_rel,
            recv_tag,
            recv_bytes,
            ..
        } => {
            let dest = abs_rank(c.rank(), *dest_rel, c.size());
            let src = abs_rank(c.rank(), *src_rel, c.size());
            rank.sendrecv(
                &c,
                dest,
                *send_tag,
                *send_bytes as usize,
                src,
                *recv_tag,
                *recv_bytes as usize,
            )
            .await;
        }
        CommEvent::Barrier { .. } => rank.barrier(&c).await,
        CommEvent::Bcast { root, bytes, .. } => rank.bcast(&c, *root as usize, *bytes as usize).await,
        CommEvent::Reduce { root, bytes, .. } => rank.reduce(&c, *root as usize, *bytes as usize).await,
        CommEvent::Allreduce { bytes, .. } => rank.allreduce(&c, *bytes as usize).await,
        CommEvent::Allgather { bytes, .. } => rank.allgather(&c, *bytes as usize).await,
        CommEvent::Alltoall { bytes_per_peer, .. } => {
            rank.alltoall(&c, *bytes_per_peer as usize).await
        }
        CommEvent::Alltoallv { send_counts, recv_counts, .. } => {
            let sc: Vec<usize> = send_counts.iter().map(|&v| v as usize).collect();
            let rc: Vec<usize> = recv_counts.iter().map(|&v| v as usize).collect();
            rank.alltoallv(&c, &sc, &rc).await;
        }
        CommEvent::Gather { root, bytes, .. } => rank.gather(&c, *root as usize, *bytes as usize).await,
        CommEvent::Scatter { root, bytes, .. } => {
            rank.scatter(&c, *root as usize, *bytes as usize).await
        }
        CommEvent::Gatherv { root, counts, .. } => {
            let counts: Vec<usize> = counts.iter().map(|&v| v as usize).collect();
            rank.gatherv(&c, *root as usize, &counts).await;
        }
        CommEvent::Scatterv { root, counts, .. } => {
            let counts: Vec<usize> = counts.iter().map(|&v| v as usize).collect();
            rank.scatterv(&c, *root as usize, &counts).await;
        }
        CommEvent::Scan { bytes, .. } => rank.scan(&c, *bytes as usize).await,
        CommEvent::ReduceScatterBlock { bytes_per_rank, .. } => {
            rank.reduce_scatter_block(&c, *bytes_per_rank as usize).await
        }
        CommEvent::CommSplit { .. } | CommEvent::CommDup { .. } | CommEvent::CommFree { .. } => {
            unreachable!("comm management rejected at generation")
        }
    }
}

// ---------------------------------------------------------------------
// Generation entry point
// ---------------------------------------------------------------------

/// Trace a program and generate a ScalaBench-style proxy.
pub fn trace_and_synthesize<'env, F>(
    machine: Machine,
    nranks: usize,
    body: F,
) -> Result<ScalaApp, BaselineError>
where
    F: Fn(Rank) -> RankFut<'env> + Send + Sync,
{
    let recorder = Arc::new(ScalaRecorder {
        per_rank: (0..nranks).map(|_| Mutex::new(RankLog::default())).collect(),
    });
    let hook: Arc<dyn PmpiHook> = recorder.clone();
    World::new(machine, nranks).with_hook(hook).run(body);
    let mut programs = Vec::with_capacity(nranks);
    for cell in recorder.per_rank.iter() {
        let log = std::mem::take(&mut *cell.lock().unwrap());
        if let Some(what) = log.unsupported {
            return Err(BaselineError::Unsupported(what));
        }
        programs.push(compress(log.events));
    }
    Ok(ScalaApp { nranks, programs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::{platform_a, platform_b, MpiFlavor};
    use siesta_workloads::{ProblemSize, Program};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    fn generate(program: Program, nprocs: usize) -> Result<ScalaApp, BaselineError> {
        trace_and_synthesize(machine(), nprocs, program.body(ProblemSize::Tiny))
    }

    #[test]
    fn rejects_flash_comm_management() {
        for program in [Program::Sedov, Program::Sod, Program::StirTurb] {
            let err = generate(program, 8).expect_err("FLASH must be rejected");
            assert!(matches!(err, BaselineError::Unsupported(_)), "{program:?}");
        }
    }

    #[test]
    fn generates_and_replays_npb() {
        for (program, nprocs) in [(Program::Bt, 9), (Program::Cg, 8), (Program::Is, 8)] {
            let app = generate(program, nprocs).expect("generation succeeds");
            let original = program.run(machine(), nprocs, ProblemSize::Tiny);
            let stats = app.replay(machine());
            // Same-platform replay lands near the original (sleeps reproduce
            // the generation platform's compute time).
            let err = stats.time_error(&original);
            assert!(
                err < 0.30,
                "{}: same-platform error {:.1}%",
                program.name(),
                err * 100.0
            );
        }
    }

    #[test]
    fn rsd_compression_folds_iterations() {
        let app = generate(Program::Sweep3d, 8).unwrap();
        let original = Program::Sweep3d.run(machine(), 8, ProblemSize::Tiny);
        let events_per_rank = original.per_rank[0].app_calls as usize;
        let items = app.total_items() / 8;
        assert!(
            items * 2 < events_per_rank,
            "RSD did not compress: {items} items vs {events_per_rank} events"
        );
    }

    #[test]
    fn histogram_pooling_is_lossy_for_mg() {
        // MG's halo volumes shrink per level; relaxed matching pools them.
        let app = generate(Program::Mg, 8).unwrap();
        assert!(app.is_lossy(), "expected pooled volumes to lose information");
    }

    #[test]
    fn sleep_replay_ignores_platform_changes() {
        // The Figure 9 failure mode: generate on A, replay on B — the
        // compute time barely moves although B is much slower.
        let program = Program::Cg;
        let app = generate(program, 8).unwrap();
        let on_a = app.replay(machine());
        let on_b = app.replay(Machine::new(platform_b(), MpiFlavor::OpenMpi));
        let orig_b = program.run(
            Machine::new(platform_b(), MpiFlavor::OpenMpi),
            8,
            ProblemSize::Tiny,
        );
        // The proxy hardly slows down on B...
        assert!(on_b.elapsed_ns() < 1.5 * on_a.elapsed_ns());
        // ...but the original does, so the error is large.
        let err = on_b.time_error(&orig_b);
        assert!(
            err > 0.3,
            "expected large cross-platform error, got {:.1}%",
            err * 100.0
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let a = generate(Program::Bt, 9).unwrap();
        let b = generate(Program::Bt, 9).unwrap();
        assert_eq!(a.total_items(), b.total_items());
        assert_eq!(a.replay(machine()).elapsed_ns(), b.replay(machine()).elapsed_ns());
    }
}
