//! Baseline proxy-app synthesizers the paper compares Siesta against
//! (Section 3.3–3.4):
//!
//! * [`scalabench`] — the ScalaBench-like tool: greedy RSD loop compression
//!   with relaxed (shape-only) matching, histogram-pooled parameters, and
//!   sleep-based computation replay. Rejects communicator-management
//!   operations, reproducing the paper's report that ScalaBench fails on
//!   the FLASH programs.
//! * [`pilgrim`] — the Pilgrim-like tool: lossless grammar-compressed
//!   communication replay with *no* computation fill, reproducing the
//!   paper's 84.30% execution-time error observation.
//!
//! (The MINIME baseline for computation events lives in
//! `siesta_proxy::minime`, next to the proxy search it contrasts with.)

pub mod pilgrim;
pub mod scalabench;

pub use scalabench::{BaselineError, ScalaApp};
