//! Process peak-RSS probe, for memory-budget gates.
//!
//! The mpisim scale sweeps (10⁴–10⁶ virtual ranks) gate on peak resident
//! set size: a 65 536-rank world must stay under 2 GB. Linux exposes the
//! high-water mark as `VmHWM` in `/proc/self/status`; other platforms
//! report `None` and the gates skip.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// where `/proc/self/status` is unavailable (non-Linux hosts).
///
/// The value is a process-lifetime high-water mark: it never decreases,
/// so measuring a phase means reading it after that phase and comparing
/// against the budget, not subtracting a "before" sample.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Current resident set size in bytes (`VmRSS`), or `None` off-Linux.
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_field(&status, "VmRSS:")
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    parse_field(status, "VmHWM:")
}

/// Extract a `kB` field from `/proc/self/status` text.
fn parse_field(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line[field.len()..]
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tsiesta\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
        assert_eq!(parse_field(status, "VmRSS:"), Some(100 * 1024));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tsiesta\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_probe_reports_something_sane() {
        let hwm = peak_rss_bytes().expect("VmHWM on Linux");
        // A test process surely holds between 1 MB and 1 TB resident.
        assert!(hwm > 1 << 20, "peak RSS {hwm} implausibly small");
        assert!(hwm < 1 << 40, "peak RSS {hwm} implausibly large");
        let rss = current_rss_bytes().expect("VmRSS on Linux");
        assert!(rss <= hwm, "current {rss} above high-water {hwm}");
    }
}
