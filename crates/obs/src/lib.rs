//! `siesta-obs` — zero-dependency observability for the synthesis pipeline.
//!
//! Siesta's whole premise is measurement, so the pipeline itself must be
//! measurable. This crate provides four small, hand-rolled facilities
//! (no external crates — the build environment has no registry access):
//!
//! * **Leveled logging** ([`log`]): `error!` .. `trace!` macros gated by a
//!   single atomic level, configurable via `SIESTA_LOG` or `--log-level`.
//! * **Timed spans** ([`span`]): RAII guards created with
//!   `span!("sequitur", rank = r)`. When profiling is disabled the macro
//!   early-outs on one relaxed atomic load and formats nothing.
//! * **Metrics** ([`metrics`]): process-global registry of monotonic
//!   counters, gauges, and log2-bucket histograms with p50/p95/p99.
//! * **Exporters**: Chrome trace-event JSON ([`chrome`], loadable in
//!   `chrome://tracing` / Perfetto) and a human-readable per-phase
//!   report table ([`report`]).
//!
//! Everything is `'static` and lock-light: spans append to a mutexed sink
//! only when profiling is on; counters/histograms are plain atomics once
//! registered.

pub mod chrome;
pub mod log;
pub mod metrics;
pub mod report;
pub mod span;

pub use log::{set_level_from_str, Level};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    HistogramSummary, MetricsSnapshot,
};
pub use span::{
    drain_spans, profiling_enabled, set_profiling_enabled, FinishedSpan, SpanGuard,
};
