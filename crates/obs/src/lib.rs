//! `siesta-obs` — flight-recorder observability for the synthesis pipeline.
//!
//! Siesta's whole premise is measurement, so the pipeline itself must be
//! measurable — without distorting what it measures. This crate provides
//! small, hand-rolled facilities (workspace-internal only — the build
//! environment has no registry access):
//!
//! * **Leveled logging** ([`log`]): `error!` .. `trace!` macros gated by a
//!   single atomic level, configurable via `SIESTA_LOG` or `--log-level`.
//! * **Flight-recorder spans** ([`span`]): RAII guards created with
//!   `span!("sequitur", rank = r)`. The record path is lock-free — each
//!   thread commits into its own sharded slot buffer — and allocation-free
//!   for a no-arg span; dynamic args are interned to `u64` content-hash
//!   ids ([`intern`]). A bounded ring mode (`SIESTA_OBS_CAP` /
//!   `--obs-cap`) caps memory with an exact dropped-span count. When
//!   profiling is disabled the macro early-outs on one relaxed atomic
//!   load and formats nothing.
//! * **Metrics** ([`metrics`]): process-global registry of monotonic
//!   counters, gauges, and log2-bucket histograms with p50/p95/p99.
//! * **Exporters**: Chrome trace-event JSON ([`chrome`], loadable in
//!   `chrome://tracing` / Perfetto, with the interned-args string table)
//!   and a per-phase report table ([`report`]) with inclusive *and*
//!   exclusive time ([`selftime`]). Both have canonical (timing-free)
//!   variants that are byte-identical across `--threads` widths.
//! * **Virtual-time profiling substrate** ([`timeline`], [`vtime`]):
//!   bounded per-track event rings with exact drop counts, plus
//!   virtual-time Chrome-trace and wait/transfer-table exporters for the
//!   simulator's per-rank profiler (deterministic by construction —
//!   virtual timestamps are a pure function of the simulated program).
//!
//! The overhead budget — <1% pipeline slowdown with profiling off, <5%
//! with `--profile` — is measured by `benches/obs_overhead.rs` in
//! `siesta-bench` and enforced in CI by `scripts/check_bench.py`.

pub mod chrome;
pub mod intern;
pub mod log;
pub mod metrics;
pub mod report;
pub mod rss;
pub mod selftime;
pub mod span;
pub mod timeline;
pub mod vtime;

pub use intern::ArgsId;
pub use log::{set_level_from_str, Level};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    HistogramSummary, MetricsSnapshot,
};
pub use rss::{current_rss_bytes, peak_rss_bytes};
pub use selftime::self_times;
pub use span::{
    drain, drain_spans, profiling_enabled, register_thread, set_profiling_enabled,
    set_span_capacity, span_capacity, thread_index, DrainedSpans, FinishedSpan, SpanGuard,
};
