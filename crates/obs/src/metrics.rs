//! Process-global metrics registry: counters, gauges, log2 histograms.
//!
//! Metrics are registered once by name and then updated through plain
//! atomics — after the first lookup a hot path touches no locks. Handles
//! are `&'static` (backed by `Box::leak`), so call sites can cache them
//! in a `OnceLock` and pay one `Relaxed` RMW per update.
//!
//! Histograms use 65 power-of-two buckets: bucket 0 holds the value 0 and
//! bucket `k >= 1` holds values in `[2^(k-1), 2^k - 1]`. Percentiles use
//! the nearest-rank rule over bucket counts and report the bucket's upper
//! bound, clamped to the observed maximum — exact enough for latency and
//! size distributions while staying allocation- and lock-free on record.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram of `u64` samples.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros(v)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // min/max stabilize after the first few samples; a plain load
        // before the RMW keeps the steady-state record at three atomic
        // adds (this runs on every MPI call under `--profile`).
        if v < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`p` in 0..=100): the upper bound of the
    /// bucket containing the ceil(p/100 * n)-th sample, clamped to the
    /// observed max. Returns `None` for an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper(idx).min(self.max.load(Ordering::Relaxed)));
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50.0).unwrap_or(0),
            p95: self.percentile(95.0).unwrap_or(0),
            p99: self.percentile(99.0).unwrap_or(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
};

/// Get or register the counter named `name`. The handle is `'static`;
/// cache it (e.g. in a `OnceLock`) on hot paths.
pub fn counter(name: &'static str) -> &'static Counter {
    REGISTRY
        .counters
        .lock()
        .unwrap()
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Get or register the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    REGISTRY
        .gauges
        .lock()
        .unwrap()
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Get or register the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    REGISTRY
        .histograms
        .lock()
        .unwrap()
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Point-in-time view of every registered metric, sorted by name.
#[derive(Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: REGISTRY
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k, v.get()))
            .collect(),
        gauges: REGISTRY
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k, v.get()))
            .collect(),
        histograms: REGISTRY
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k, v.summary()))
            .collect(),
    }
}

/// Zero every registered metric (handles stay valid). Mainly for tests
/// and for isolating per-run stats in long-lived processes.
pub fn reset_metrics() {
    for c in REGISTRY.counters.lock().unwrap().values() {
        c.reset();
    }
    for g in REGISTRY.gauges.lock().unwrap().values() {
        g.reset();
    }
    for h in REGISTRY.histograms.lock().unwrap().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("test.counter.basics");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same handle.
        assert_eq!(counter("test.counter.basics").get(), 5);

        let g = gauge("test.gauge.basics");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_histogram() {
        let h = Histogram::default();
        h.record(42);
        // Every percentile of a single sample is that sample (clamped to
        // the observed max, so the bucket upper bound 63 is not reported).
        assert_eq!(h.percentile(1.0), Some(42));
        assert_eq!(h.percentile(50.0), Some(42));
        assert_eq!(h.percentile(100.0), Some(42));
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50), (1, 42, 42, 42));
    }

    #[test]
    fn bucket_boundary_percentiles() {
        let h = Histogram::default();
        // 90 samples of 1 (bucket 1), 10 samples of 1024 (bucket 11).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1024);
        }
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(90.0), Some(1));
        // Rank 91 falls in the 1024 bucket, upper bound 2047 clamped to 1024.
        assert_eq!(h.percentile(91.0), Some(1024));
        assert_eq!(h.percentile(99.0), Some(1024));
        assert_eq!(h.summary().sum, 90 + 10 * 1024);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.percentile(50.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(8));
        assert_eq!(h.summary().min, 0);
    }

    #[test]
    fn snapshot_and_reset() {
        let c = counter("test.snapshot.ctr");
        let h = histogram("test.snapshot.hist");
        c.add(3);
        h.record(16);
        let snap = metrics_snapshot();
        assert!(snap.counters.iter().any(|&(k, v)| k == "test.snapshot.ctr" && v >= 3));
        assert!(snap
            .histograms
            .iter()
            .any(|&(k, s)| k == "test.snapshot.hist" && s.count >= 1));
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
    }
}
