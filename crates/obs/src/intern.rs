//! Span-argument interning: formatted `key=value` strings become compact
//! `u64` ids so a recorded span carries one word instead of a `String`.
//!
//! The id is the deterministic `siesta-hash` content hash of the string —
//! the same args hash to the same id in every process, at every thread
//! count, so ids are safe to embed in exported artifacts (the Chrome
//! trace's string table) without breaking the determinism contract.
//!
//! Interning happens at span *start*, off the record path (the guard drop
//! that commits a span touches no table). A thread-local "already
//! published" set makes the steady state lock-free: once a thread has
//! interned a string, re-interning the same content never takes the global
//! table lock again.
//!
//! Collisions (two distinct strings with equal hashes) keep the
//! first-published string and bump `obs.intern.collisions`; with 64-bit
//! ids over the handful of distinct arg strings a run produces, this is a
//! diagnostics counter, not an expected event.

use std::cell::RefCell;
use std::sync::Mutex;

use siesta_hash::{fx_hash_one, FxHashMap, FxHashSet};

/// Interned span args. `NONE` (0) means "no args" and is what a no-arg
/// span carries — no formatting, no interning, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArgsId(pub u64);

impl ArgsId {
    pub const NONE: ArgsId = ArgsId(0);

    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// id → leaked string. Insert-only; strings live for the process.
static TABLE: Mutex<Option<FxHashMap<u64, &'static str>>> = Mutex::new(None);

thread_local! {
    /// Ids this thread has already published to [`TABLE`].
    static SEEN: RefCell<FxHashSet<u64>> = RefCell::new(FxHashSet::default());
}

/// Deterministic id for an args string (`id != 0` for non-empty input).
fn id_of(s: &str) -> u64 {
    // Reserve 0 for "no args": remap a (vanishingly unlikely) zero hash.
    fx_hash_one(s).max(1)
}

/// Intern `s`, publishing it to the global string table on first sight.
/// Returns [`ArgsId::NONE`] for the empty string.
pub fn intern(s: &str) -> ArgsId {
    if s.is_empty() {
        return ArgsId::NONE;
    }
    let id = id_of(s);
    let published = SEEN.with(|seen| seen.borrow().contains(&id));
    if !published {
        let mut table = TABLE.lock().unwrap();
        let table = table.get_or_insert_with(FxHashMap::default);
        match table.get(&id) {
            None => {
                table.insert(id, Box::leak(s.to_owned().into_boxed_str()));
            }
            Some(existing) if *existing != s => {
                crate::metrics::counter("obs.intern.collisions").inc();
            }
            Some(_) => {}
        }
        SEEN.with(|seen| {
            seen.borrow_mut().insert(id);
        });
    }
    ArgsId(id)
}

/// The string behind an id; `""` for [`ArgsId::NONE`] or an unknown id
/// (e.g. a span drained in a process that never interned it — impossible
/// in-process, but a harmless empty string beats a panic).
pub fn resolve(id: ArgsId) -> &'static str {
    if id.is_none() {
        return "";
    }
    TABLE
        .lock()
        .unwrap()
        .as_ref()
        .and_then(|t| t.get(&id.0).copied())
        .unwrap_or("")
}

/// Snapshot of the string table, sorted by id — a deterministic order,
/// because ids are content hashes. Used by the Chrome exporter.
pub fn string_table() -> Vec<(u64, &'static str)> {
    let mut entries: Vec<(u64, &'static str)> = TABLE
        .lock()
        .unwrap()
        .as_ref()
        .map(|t| t.iter().map(|(&k, &v)| (k, v)).collect())
        .unwrap_or_default();
    entries.sort_unstable_by_key(|&(id, _)| id);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_dedup() {
        let a = intern("rank=3");
        let b = intern("rank=3");
        assert_eq!(a, b);
        assert!(!a.is_none());
        assert_eq!(resolve(a), "rank=3");
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(intern(""), ArgsId::NONE);
        assert_eq!(resolve(ArgsId::NONE), "");
    }

    #[test]
    fn ids_are_content_hashes() {
        // Deterministic across calls (and, by the `siesta-hash` contract,
        // across processes): the id is a pure function of the content.
        assert_eq!(intern("x=1").0, fx_hash_one("x=1").max(1));
    }

    #[test]
    fn unknown_id_resolves_empty() {
        assert_eq!(resolve(ArgsId(0xdead_beef_0bad_f00d)), "");
    }

    #[test]
    fn string_table_contains_interned_strings_sorted() {
        let id = intern("table=probe");
        let table = string_table();
        assert!(table.iter().any(|&(i, s)| i == id.0 && s == "table=probe"));
        assert!(table.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
