//! Human-readable per-phase report: span timings aggregated by name plus
//! a dump of all registered metrics. Printed by the CLI's `--stats` flag.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::span::FinishedSpan;

#[derive(Debug, Default, Clone, Copy)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render span timings (grouped by span name, ordered by total time) and
/// the metrics snapshot as an aligned plain-text table.
pub fn render_report(spans: &[FinishedSpan], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();

    if !spans.is_empty() {
        let mut phases: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
        for s in spans {
            let agg = phases.entry(s.name).or_default();
            agg.count += 1;
            agg.total_ns += s.dur_ns;
            agg.max_ns = agg.max_ns.max(s.dur_ns);
        }
        let mut rows: Vec<_> = phases.into_iter().collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_ns));

        out.push_str("phase timings:\n");
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "mean ms", "max ms"
        );
        for (name, agg) in rows {
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>12} {:>12} {:>12}",
                name,
                agg.count,
                fmt_ms(agg.total_ns),
                fmt_ms(agg.total_ns / agg.count.max(1)),
                fmt_ms(agg.max_ns)
            );
        }
    }

    if !metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for &(name, v) in &metrics.counters {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        for &(name, v) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9}",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        );
        for &(name, s) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>12.1} {:>9} {:>9} {:>9} {:>9}",
                name, s.count, s.mean(), s.p50, s.p95, s.p99, s.max
            );
        }
    }

    if out.is_empty() {
        out.push_str("(no spans or metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;
    use crate::span::FinishedSpan;

    #[test]
    fn report_contains_phases_and_metrics() {
        let spans = vec![
            FinishedSpan {
                name: "sequitur",
                args: "rank=0".into(),
                tid: 1,
                depth: 1,
                start_ns: 0,
                dur_ns: 2_000_000,
            },
            FinishedSpan {
                name: "sequitur",
                args: "rank=1".into(),
                tid: 1,
                depth: 1,
                start_ns: 0,
                dur_ns: 4_000_000,
            },
        ];
        let metrics = MetricsSnapshot {
            counters: vec![("mpi.calls.MPI_Send", 128)],
            gauges: vec![("grammar.merged_rules", 12)],
            histograms: vec![(
                "mpi.message_bytes",
                HistogramSummary { count: 5, sum: 50, min: 2, max: 30, p50: 8, p95: 30, p99: 30 },
            )],
        };
        let text = render_report(&spans, &metrics);
        assert!(text.contains("sequitur"));
        assert!(text.contains("2")); // count column for the two spans
        assert!(text.contains("mpi.calls.MPI_Send"));
        assert!(text.contains("grammar.merged_rules"));
        assert!(text.contains("mpi.message_bytes"));
    }

    #[test]
    fn empty_report_is_explicit() {
        let text = render_report(&[], &MetricsSnapshot::default());
        assert!(text.contains("no spans or metrics"));
    }
}
