//! Human-readable per-phase report: span timings aggregated by name plus
//! a dump of all registered metrics. Printed by the CLI's `--stats` flag.
//!
//! Two renderings live here:
//!
//! * [`render_report`] — the full report: inclusive **and exclusive**
//!   (self) time per phase, every counter/gauge/histogram, and a derived
//!   `grammar.memo.hit_rate` line when the memoization counters are
//!   present.
//! * [`render_canonical_report`] — a timing-free projection (span
//!   name/count plus the deterministic counters and gauges) that is
//!   byte-identical across `--threads` widths; the cross-width
//!   differential test compares this form.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::selftime::self_times;
use crate::span::FinishedSpan;

#[derive(Debug, Default, Clone, Copy)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render span timings (grouped by span name, ordered by total time) and
/// the metrics snapshot as an aligned plain-text table.
pub fn render_report(spans: &[FinishedSpan], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();

    if !spans.is_empty() {
        let self_ns = self_times(spans);
        let mut phases: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
        for (s, &self_t) in spans.iter().zip(&self_ns) {
            let agg = phases.entry(s.name).or_default();
            agg.count += 1;
            agg.total_ns += s.dur_ns;
            agg.self_ns += self_t;
            agg.max_ns = agg.max_ns.max(s.dur_ns);
        }
        let mut rows: Vec<_> = phases.into_iter().collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_ns));

        out.push_str("phase timings:\n");
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "self ms", "mean ms", "max ms"
        );
        for (name, agg) in rows {
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
                name,
                agg.count,
                fmt_ms(agg.total_ns),
                fmt_ms(agg.self_ns),
                fmt_ms(agg.total_ns / agg.count.max(1)),
                fmt_ms(agg.max_ns)
            );
        }
    }

    if !metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for &(name, v) in &metrics.counters {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
        if let Some(line) = memo_hit_rate_line(&metrics.counters) {
            out.push_str(&line);
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        for &(name, v) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9}",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        );
        for &(name, s) in &metrics.histograms {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>12.1} {:>9} {:>9} {:>9} {:>9}",
                name, s.count, s.mean(), s.p50, s.p95, s.p99, s.max
            );
        }
    }

    if out.is_empty() {
        out.push_str("(no spans or metrics recorded)\n");
    }
    out
}

/// Derived line making PR 4's grammar memoization win legible at a
/// glance: `hits / (hits + unique)` from the two memo counters, if both
/// were recorded this run.
fn memo_hit_rate_line(counters: &[(&'static str, u64)]) -> Option<String> {
    let get = |name: &str| counters.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v);
    let hits = get("grammar.memo.hits")?;
    let unique = get("grammar.memo.unique")?;
    let total = hits + unique;
    if total == 0 {
        return None;
    }
    Some(format!(
        "  {:<32} {:>13.1}%\n",
        "grammar.memo.hit_rate",
        hits as f64 / total as f64 * 100.0
    ))
}

/// Is this metric deterministic across thread widths? The recorder's own
/// housekeeping (`obs.*`: dropped spans, intern collisions) and the
/// configured width itself (`par.threads`) legitimately vary; everything
/// else the pipeline records is workload-determined.
fn deterministic_metric(name: &str) -> bool {
    !name.starts_with("obs.") && name != "par.threads"
}

/// Render the timing-free canonical report: per-span-name counts plus
/// the deterministic counters and gauges (no durations, no histograms,
/// no `obs.*` bookkeeping, no `par.threads`). Byte-identical across
/// `--threads` widths for the same workload.
pub fn render_canonical_report(spans: &[FinishedSpan], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();

    if !spans.is_empty() {
        let mut phases: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
        for s in spans {
            *phases.entry((s.name, s.args_str())).or_default() += 1;
        }
        out.push_str("spans:\n");
        for ((name, args), count) in phases {
            if args.is_empty() {
                let _ = writeln!(out, "  {name:<32} x{count}");
            } else {
                let _ = writeln!(out, "  {name:<32} x{count} [{args}]");
            }
        }
    }

    let counters: Vec<_> =
        metrics.counters.iter().filter(|&&(n, _)| deterministic_metric(n)).collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for &&(name, v) in &counters {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    let gauges: Vec<_> =
        metrics.gauges.iter().filter(|&&(n, _)| deterministic_metric(n)).collect();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for &&(name, v) in &gauges {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }

    if out.is_empty() {
        out.push_str("(no spans or metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::intern;
    use crate::metrics::HistogramSummary;
    use crate::span::FinishedSpan;

    fn span(
        name: &'static str,
        args: &str,
        depth: u32,
        start_ns: u64,
        dur_ns: u64,
    ) -> FinishedSpan {
        FinishedSpan { name, args: intern(args), tid: 1, depth, start_ns, dur_ns }
    }

    #[test]
    fn report_contains_phases_and_metrics() {
        let spans = vec![
            span("sequitur", "rank=0", 1, 0, 2_000_000),
            span("sequitur", "rank=1", 1, 3_000_000, 4_000_000),
        ];
        let metrics = MetricsSnapshot {
            counters: vec![("mpi.calls.MPI_Send", 128)],
            gauges: vec![("grammar.merged_rules", 12)],
            histograms: vec![(
                "mpi.message_bytes",
                HistogramSummary { count: 5, sum: 50, min: 2, max: 30, p50: 8, p95: 30, p99: 30 },
            )],
        };
        let text = render_report(&spans, &metrics);
        assert!(text.contains("sequitur"));
        assert!(text.contains("self ms"));
        assert!(text.contains("mpi.calls.MPI_Send"));
        assert!(text.contains("grammar.merged_rules"));
        assert!(text.contains("mpi.message_bytes"));
    }

    #[test]
    fn self_time_column_subtracts_children() {
        // Outer 10ms with a 4ms child: self = 6ms for outer.
        let spans = vec![
            span("outer", "", 0, 0, 10_000_000),
            span("inner", "", 1, 1_000_000, 4_000_000),
        ];
        let text = render_report(&spans, &MetricsSnapshot::default());
        let outer_line = text.lines().find(|l| l.trim_start().starts_with("outer")).unwrap();
        assert!(outer_line.contains("10.000"), "total: {outer_line}");
        assert!(outer_line.contains("6.000"), "self: {outer_line}");
    }

    #[test]
    fn memo_hit_rate_is_derived() {
        let metrics = MetricsSnapshot {
            counters: vec![("grammar.memo.hits", 30), ("grammar.memo.unique", 10)],
            gauges: vec![],
            histograms: vec![],
        };
        let text = render_report(&[], &metrics);
        assert!(text.contains("grammar.memo.hit_rate"));
        assert!(text.contains("75.0%"));
    }

    #[test]
    fn canonical_report_strips_timing_and_nondeterministic_metrics() {
        let spans = vec![
            span("sequitur", "rank=0", 1, 17, 2_000_000),
            span("sequitur", "rank=0", 1, 500, 9_000),
        ];
        let metrics = MetricsSnapshot {
            counters: vec![("grammar.memo.hits", 3), ("obs.spans_dropped", 9)],
            gauges: vec![("par.threads", 8), ("grammar.merged_rules", 12)],
            histograms: vec![],
        };
        let text = render_canonical_report(&spans, &metrics);
        assert!(text.contains("sequitur"));
        assert!(text.contains("x2"));
        assert!(text.contains("[rank=0]"));
        assert!(text.contains("grammar.memo.hits"));
        assert!(text.contains("grammar.merged_rules"));
        assert!(!text.contains("obs.spans_dropped"));
        assert!(!text.contains("par.threads"));
        assert!(!text.contains("ms"));
    }

    #[test]
    fn empty_report_is_explicit() {
        let text = render_report(&[], &MetricsSnapshot::default());
        assert!(text.contains("no spans or metrics"));
        let text = render_canonical_report(&[], &MetricsSnapshot::default());
        assert!(text.contains("no spans or metrics"));
    }
}
