//! Per-track virtual-time event recording.
//!
//! A [`Timeline`] is the storage substrate of the simulator's virtual-time
//! profiler: one bounded buffer per *track* (one track per simulated rank),
//! written from whichever pool worker happens to be polling that rank. The
//! scheduler polls a rank on at most one thread at a time, so each track's
//! mutex is uncontended — the lock is there for soundness, not arbitration
//! — and events land in the rank's program order.
//!
//! Memory is bounded per track (the flight-recorder discipline of
//! `crate::span`, applied per rank instead of per thread): with a capacity
//! set, each track keeps the **newest** `cap` events as a ring and counts
//! exactly how many it overwrote. Snapshots rotate rings back into
//! chronological order, so consumers always see oldest-first event slices
//! plus an exact per-track drop count.

use std::sync::Mutex;

/// One track's buffer: a plain vector until `cap` is reached, then a ring.
struct TrackBuf<T> {
    events: Vec<T>,
    /// Ring cursor: index of the *oldest* retained event once full.
    start: usize,
    dropped: u64,
}

/// Chronological contents of one track at snapshot time.
#[derive(Debug, Clone)]
pub struct TrackSnapshot<T> {
    /// Retained events, oldest first (program order for rank tracks).
    pub events: Vec<T>,
    /// Events overwritten in ring mode — exact, never sampled.
    pub dropped: u64,
}

/// Fixed-track-count, bounded-memory event store. See the module docs.
pub struct Timeline<T> {
    tracks: Vec<Mutex<TrackBuf<T>>>,
    /// Per-track event capacity; `0` means unbounded.
    cap: usize,
}

impl<T> Timeline<T> {
    /// A timeline of `ntracks` tracks keeping at most `cap_per_track`
    /// events each (`0` = unbounded).
    pub fn new(ntracks: usize, cap_per_track: usize) -> Timeline<T> {
        Timeline {
            tracks: (0..ntracks)
                .map(|_| {
                    Mutex::new(TrackBuf {
                        // Modest pre-size: rank programs usually record at
                        // least a handful of calls; rings reserve in full.
                        events: Vec::with_capacity(if cap_per_track == 0 {
                            8
                        } else {
                            cap_per_track.min(1024)
                        }),
                        start: 0,
                        dropped: 0,
                    })
                })
                .collect(),
            cap: cap_per_track,
        }
    }

    pub fn ntracks(&self) -> usize {
        self.tracks.len()
    }

    /// Per-track capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an event to `track`. Out-of-range tracks are ignored (the
    /// recorder must never panic inside the simulator's hot path).
    pub fn push(&self, track: usize, event: T) {
        let Some(buf) = self.tracks.get(track) else { return };
        let mut buf = buf.lock().unwrap();
        if self.cap > 0 && buf.events.len() == self.cap {
            let at = buf.start;
            buf.events[at] = event;
            buf.start = (at + 1) % self.cap;
            buf.dropped += 1;
        } else {
            buf.events.push(event);
        }
    }

    /// Total events dropped across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.lock().unwrap().dropped).sum()
    }
}

impl<T: Clone> Timeline<T> {
    /// Copy every track out in chronological order.
    pub fn snapshot(&self) -> Vec<TrackSnapshot<T>> {
        self.tracks
            .iter()
            .map(|t| {
                let buf = t.lock().unwrap();
                let mut events = Vec::with_capacity(buf.events.len());
                events.extend_from_slice(&buf.events[buf.start..]);
                events.extend_from_slice(&buf.events[..buf.start]);
                TrackSnapshot { events, dropped: buf.dropped }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_tracks_keep_everything_in_order() {
        let tl: Timeline<u32> = Timeline::new(2, 0);
        for i in 0..100 {
            tl.push((i % 2) as usize, i);
        }
        let snap = tl.snapshot();
        assert_eq!(snap[0].events, (0..100).filter(|i| i % 2 == 0).collect::<Vec<_>>());
        assert_eq!(snap[1].events, (0..100).filter(|i| i % 2 == 1).collect::<Vec<_>>());
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn ring_mode_keeps_newest_with_exact_drop_count() {
        let tl: Timeline<u32> = Timeline::new(1, 4);
        for i in 0..11 {
            tl.push(0, i);
        }
        let snap = tl.snapshot();
        assert_eq!(snap[0].events, vec![7, 8, 9, 10]);
        assert_eq!(snap[0].dropped, 7);
        assert_eq!(tl.dropped(), 7);
    }

    #[test]
    fn exactly_full_ring_has_no_drops() {
        let tl: Timeline<u32> = Timeline::new(1, 3);
        for i in 0..3 {
            tl.push(0, i);
        }
        let snap = tl.snapshot();
        assert_eq!(snap[0].events, vec![0, 1, 2]);
        assert_eq!(snap[0].dropped, 0);
    }

    #[test]
    fn out_of_range_track_is_ignored() {
        let tl: Timeline<u32> = Timeline::new(1, 0);
        tl.push(5, 42);
        assert!(tl.snapshot()[0].events.is_empty());
    }
}
