//! Flight-recorder spans: lock-free per-thread sharded recording with
//! RAII guards.
//!
//! `span!("sequitur", rank = r)` returns a [`SpanGuard`]; dropping it
//! commits a [`FinishedSpan`] into the calling thread's **shard** — a
//! chunked, single-writer slot buffer registered in a global shard list.
//! The commit path takes **no locks and performs no heap allocation** for
//! a no-arg span: it writes one seqlock-protected slot of plain atomic
//! words and bumps the shard's committed count. When profiling is
//! disabled (the default) the macro performs a single relaxed atomic load
//! and returns an inert guard without formatting its arguments, so
//! instrumented hot paths stay effectively free.
//!
//! # Shard lifecycle
//!
//! Each recording thread lazily registers one leaked shard on its first
//! span (worker threads of the `siesta-par` pool register eagerly at
//! spawn, so even the first span on a worker is registration-free). A
//! shard starts with one pre-allocated chunk of [`CHUNK`] slots and grows
//! by whole chunks — one allocation per `CHUNK` spans, never per span.
//! Chunks are reused across drains and live for the process.
//!
//! # Bounded mode
//!
//! With a capacity set (`SIESTA_OBS_CAP` env var or
//! [`set_span_capacity`], surfaced as `--obs-cap` on the CLI), each shard
//! becomes a ring of that many slots: the writer wraps and overwrites the
//! oldest spans, and [`drain`] reports exactly how many were lost. Long
//! runs get bounded memory; the newest spans always survive.
//!
//! # Draining
//!
//! [`drain`] snapshots every shard's committed spans, merge-sorts them by
//! `(start_ns, tid, name)` — a deterministic order, so exports are
//! byte-stable — and advances a global epoch; each writer resets its own
//! shard on the first push of a new epoch. Spans committed *while* a
//! drain is in flight may land in the retiring epoch and be lost, so
//! drain at quiescence (the CLI drains after the pipeline returns; the
//! pool's workers are parked by then). A slot overwritten mid-read is
//! detected by its sequence counter and counted as dropped, never torn.
//!
//! Timestamps are nanoseconds since the first use of the clock in this
//! process (a monotonic epoch), which maps directly onto the Chrome
//! trace-event `ts` field after dividing by 1000.

use std::cell::Cell;
use std::sync::atomic::{
    fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::intern::ArgsId;

/// Master switch. Off by default; flipped by `--profile`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is span collection on? One relaxed load; call before doing any work
/// whose only purpose is feeding the profiler.
#[inline]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub fn set_profiling_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-local monotonic epoch.
#[inline]
pub fn clock_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Small dense per-thread id for the Chrome `tid` field (the OS
    /// thread id is neither stable nor compact).
    static TID: Cell<u32> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This thread's shard, once registered.
    static MY_SHARD: Cell<Option<&'static Shard>> = const { Cell::new(None) };
}

/// Small dense id of the calling thread (1, 2, …, in first-use order).
/// Stable for the thread's lifetime; shared with the span recorder's
/// Chrome `tid` field. Cheap enough for per-event sharding decisions.
#[inline]
pub fn thread_index() -> u32 {
    this_tid()
}

#[inline]
fn this_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// A completed span, ready for export. Plain `Copy` data: the args are an
/// interned id ([`crate::intern`]), not an owned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedSpan {
    pub name: &'static str,
    /// Interned `key=value` pairs; [`ArgsId::NONE`] if none.
    pub args: ArgsId,
    pub tid: u32,
    pub depth: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl FinishedSpan {
    /// The formatted args behind [`FinishedSpan::args`] (`""` if none).
    pub fn args_str(&self) -> &'static str {
        crate::intern::resolve(self.args)
    }
}

/// Spans per chunk. A shard's first chunk is allocated at registration,
/// so recording is allocation-free until a shard outgrows it (one chunk
/// allocation per `CHUNK` spans after that).
pub const CHUNK: usize = 1024;

/// One recording slot: a per-slot sequence counter plus the span fields
/// as plain atomic words (seqlock discipline — a reader that races a ring
/// overwrite observes a sequence mismatch and skips the slot instead of
/// tearing it).
struct Slot {
    /// 0 = never written; odd = write in progress; even > 0 = committed.
    seq: AtomicU32,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    /// `tid << 32 | depth`.
    meta: AtomicU64,
    args: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU32::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            meta: AtomicU64::new(0),
            args: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }

    /// Single-writer publish: odd sequence → fields → even sequence.
    fn write(&self, span: &FinishedSpan) {
        let s0 = self.seq.load(Ordering::Relaxed);
        self.seq.store(s0.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        self.name_ptr.store(span.name.as_ptr() as usize, Ordering::Relaxed);
        self.name_len.store(span.name.len(), Ordering::Relaxed);
        self.meta.store(((span.tid as u64) << 32) | span.depth as u64, Ordering::Relaxed);
        self.args.store(span.args.0, Ordering::Relaxed);
        self.start_ns.store(span.start_ns, Ordering::Relaxed);
        self.dur_ns.store(span.dur_ns, Ordering::Relaxed);
        self.seq.store(s0.wrapping_add(2), Ordering::Release);
    }

    /// Validated read: `None` for an unwritten slot or one overwritten
    /// concurrently (sequence changed under us).
    fn read(&self) -> Option<FinishedSpan> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let name_ptr = self.name_ptr.load(Ordering::Relaxed);
        let name_len = self.name_len.load(Ordering::Relaxed);
        let meta = self.meta.load(Ordering::Relaxed);
        let args = self.args.load(Ordering::Relaxed);
        let start_ns = self.start_ns.load(Ordering::Relaxed);
        let dur_ns = self.dur_ns.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        // The (ptr, len) pair passed the sequence check, so both words
        // come from the same committed write of a real `&'static str`.
        let name = unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                name_ptr as *const u8,
                name_len,
            ))
        };
        Some(FinishedSpan {
            name,
            args: ArgsId(args),
            tid: (meta >> 32) as u32,
            depth: meta as u32,
            start_ns,
            dur_ns,
        })
    }
}

struct Chunk {
    slots: Box<[Slot]>,
    next: AtomicPtr<Chunk>,
}

impl Chunk {
    fn alloc() -> *mut Chunk {
        let slots: Box<[Slot]> = (0..CHUNK).map(|_| Slot::new()).collect();
        Box::into_raw(Box::new(Chunk { slots, next: AtomicPtr::new(std::ptr::null_mut()) }))
    }
}

/// One thread's span buffer. Single writer (the owning thread); drained
/// by any thread via the committed-count/seqlock protocol. All fields are
/// atomics so the shard is `Sync` without locks; the cursor fields
/// (`tail`, `tail_pos`) are written only by the owner.
struct Shard {
    tid: u32,
    /// First chunk; allocated at registration, never replaced.
    head: AtomicPtr<Chunk>,
    /// Writer cursor: current chunk and position within it.
    tail: AtomicPtr<Chunk>,
    tail_pos: AtomicUsize,
    /// Spans pushed in the current epoch (monotonic within an epoch).
    written: AtomicU64,
    /// Drain epoch these contents belong to.
    epoch: AtomicU64,
    /// Ring capacity in slots for this epoch (0 = unbounded).
    cap: AtomicU64,
}

impl Shard {
    fn new(tid: u32) -> Shard {
        let first = Chunk::alloc();
        Shard {
            tid,
            head: AtomicPtr::new(first),
            tail: AtomicPtr::new(first),
            tail_pos: AtomicUsize::new(0),
            written: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            cap: AtomicU64::new(0),
        }
    }

    /// Commit one span. Owner thread only. Lock-free; allocates only when
    /// the shard grows past another [`CHUNK`] spans in unbounded mode.
    fn push(&self, span: &FinishedSpan) {
        let ep = SPAN_EPOCH.load(Ordering::Relaxed);
        if self.epoch.load(Ordering::Relaxed) != ep {
            // First push of a new epoch: the previous contents were
            // drained (or abandoned). Reset the cursor, re-read the cap.
            self.written.store(0, Ordering::Relaxed);
            self.cap.store(global_cap(), Ordering::Relaxed);
            self.tail.store(self.head.load(Ordering::Relaxed), Ordering::Relaxed);
            self.tail_pos.store(0, Ordering::Relaxed);
            self.epoch.store(ep, Ordering::Release);
        }
        let w = self.written.load(Ordering::Relaxed);
        let cap = self.cap.load(Ordering::Relaxed);
        if cap != 0 && w != 0 && w.is_multiple_of(cap) {
            // Ring wrap: overwrite from the first slot again.
            self.tail.store(self.head.load(Ordering::Relaxed), Ordering::Relaxed);
            self.tail_pos.store(0, Ordering::Relaxed);
        }
        let mut chunk = self.tail.load(Ordering::Relaxed);
        let mut pos = self.tail_pos.load(Ordering::Relaxed);
        if pos == CHUNK {
            let cur = unsafe { &*chunk };
            let mut next = cur.next.load(Ordering::Acquire);
            if next.is_null() {
                next = Chunk::alloc();
                cur.next.store(next, Ordering::Release);
            }
            chunk = next;
            pos = 0;
            self.tail.store(chunk, Ordering::Relaxed);
            self.tail_pos.store(0, Ordering::Relaxed);
        }
        unsafe { &*chunk }.slots[pos].write(span);
        self.tail_pos.store(pos + 1, Ordering::Relaxed);
        self.written.store(w + 1, Ordering::Release);
    }
}

/// Global drain epoch; bumped by [`drain`]. Starts at 1 so a fresh
/// shard's `epoch == 0` is always stale.
static SPAN_EPOCH: AtomicU64 = AtomicU64::new(1);

/// All registered shards (leaked, one per recording thread ever seen).
static REGISTRY: Mutex<Vec<&'static Shard>> = Mutex::new(Vec::new());

/// Per-shard slot capacity. `u64::MAX` = unset, read `SIESTA_OBS_CAP`
/// lazily; 0 = unbounded.
static CAP: AtomicU64 = AtomicU64::new(u64::MAX);

fn global_cap() -> u64 {
    let c = CAP.load(Ordering::Relaxed);
    if c != u64::MAX {
        return c;
    }
    let env = std::env::var("SIESTA_OBS_CAP")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    CAP.store(env, Ordering::Relaxed);
    env
}

/// Bound every shard to a ring of `cap` spans (0 = unbounded, the
/// default). Overrides `SIESTA_OBS_CAP`; surfaced as `--obs-cap` on the
/// CLI. Takes effect per shard at the start of its next drain epoch, so
/// set it before recording.
pub fn set_span_capacity(cap: usize) {
    CAP.store(cap as u64, Ordering::Relaxed);
}

/// The configured per-shard span capacity (0 = unbounded).
pub fn span_capacity() -> usize {
    global_cap() as usize
}

fn my_shard() -> &'static Shard {
    MY_SHARD.with(|s| match s.get() {
        Some(shard) => shard,
        None => {
            let shard: &'static Shard = Box::leak(Box::new(Shard::new(this_tid())));
            REGISTRY.lock().unwrap().push(shard);
            s.set(Some(shard));
            shard
        }
    })
}

/// Eagerly register this thread's shard (allocates its first chunk and
/// takes the registry lock once). The `siesta-par` pool calls this from
/// each worker at spawn so no lock or allocation is left on the first
/// recorded span.
pub fn register_thread() {
    let _ = my_shard();
}

/// Result of [`drain`]: the spans of the ending epoch, merge-sorted by
/// `(start_ns, tid, name)`, plus how many were dropped (ring-buffer
/// overwrites and slots caught mid-write).
#[derive(Debug, Default)]
pub struct DrainedSpans {
    pub spans: Vec<FinishedSpan>,
    pub dropped: u64,
}

/// Collect all spans recorded since the last drain and start a new epoch.
/// Deterministically ordered; see the module docs for the (documented)
/// loss window when draining concurrently with recording.
pub fn drain() -> DrainedSpans {
    let registry = REGISTRY.lock().unwrap();
    let ep = SPAN_EPOCH.load(Ordering::Relaxed);
    let mut spans = Vec::new();
    let mut dropped = 0u64;
    for shard in registry.iter() {
        if shard.epoch.load(Ordering::Acquire) != ep {
            continue; // nothing recorded this epoch
        }
        let w = shard.written.load(Ordering::Acquire);
        let cap = shard.cap.load(Ordering::Relaxed);
        let live = if cap != 0 { w.min(cap) } else { w };
        dropped += w - live;
        let mut chunk = shard.head.load(Ordering::Acquire);
        let mut remaining = live;
        while !chunk.is_null() && remaining > 0 {
            let c = unsafe { &*chunk };
            let n = (remaining as usize).min(CHUNK);
            for slot in &c.slots[..n] {
                match slot.read() {
                    Some(span) => spans.push(span),
                    // Overwritten or mid-write while we looked: lost to
                    // the ring, never torn.
                    None => dropped += 1,
                }
            }
            remaining -= n as u64;
            chunk = c.next.load(Ordering::Acquire);
        }
        debug_assert_eq!(remaining, 0, "shard {} chunk chain shorter than committed count", shard.tid);
    }
    SPAN_EPOCH.fetch_add(1, Ordering::Relaxed);
    drop(registry);
    spans.sort_by(|a, b| {
        (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name))
    });
    if dropped > 0 {
        crate::metrics::counter("obs.spans_dropped").add(dropped);
    }
    DrainedSpans { spans, dropped }
}

/// Take all spans recorded so far, leaving the recorder empty — the
/// spans-only view of [`drain`].
pub fn drain_spans() -> Vec<FinishedSpan> {
    drain().spans
}

/// RAII guard returned by [`span!`]. Records the span on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when profiling was off at creation time.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    args: ArgsId,
    start_ns: u64,
    depth: u32,
}

impl SpanGuard {
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { live: None }
    }

    /// Start a span now. Prefer the [`span!`] macro, which skips argument
    /// formatting and interning when profiling is off.
    pub fn start(name: &'static str, args: ArgsId) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            live: Some(LiveSpan { name, args, start_ns: clock_ns(), depth }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur_ns = clock_ns().saturating_sub(live.start_ns);
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            my_shard().push(&FinishedSpan {
                name: live.name,
                args: live.args,
                tid: this_tid(),
                depth: live.depth,
                start_ns: live.start_ns,
                dur_ns,
            });
        }
    }
}

/// Format-and-intern helper for the [`span!`] macro: renders the args
/// into a reused thread-local buffer (no per-span `String`) and interns
/// the result.
#[doc(hidden)]
pub fn __intern_args(fill: impl FnOnce(&mut String)) -> ArgsId {
    thread_local! {
        static BUF: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
    }
    BUF.with(|b| {
        let mut buf = b.borrow_mut();
        buf.clear();
        fill(&mut buf);
        crate::intern::intern(&buf)
    })
}

/// Open a timed span: `let _g = span!("phase");` or
/// `let _g = span!("sequitur", rank = r, len = seq.len());`.
///
/// Argument values are captured with `Display` formatting into a reused
/// thread-local buffer and interned to a `u64` id — and only when
/// profiling is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::profiling_enabled() {
            $crate::SpanGuard::start($name, $crate::intern::ArgsId::NONE)
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::profiling_enabled() {
            let args = $crate::span::__intern_args(|buf| {
                use ::std::fmt::Write as _;
                $(
                    if !buf.is_empty() {
                        buf.push(' ');
                    }
                    let _ = ::std::write!(buf, concat!(stringify!($key), "={}"), $val);
                )+
            });
            $crate::SpanGuard::start($name, args)
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global recorder state
    /// (profiling switch, epoch, capacity).
    static RECORDER_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_profiling_enabled(false);
        drain();
        {
            let _g = crate::span!("quiet", x = 1);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn spans_nest_and_record() {
        let _g = locked();
        set_profiling_enabled(true);
        drain();
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner", rank = 3);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_profiling_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        // Drain sorts by start: outer starts first, inner second.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].args_str(), "rank=3");
        assert!(spans[0].args.is_none());
        assert!(spans[0].dur_ns >= spans[1].dur_ns);
        assert!(spans[1].dur_ns >= 1_000_000);
        assert_eq!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn epochs_isolate_drains() {
        let _g = locked();
        set_profiling_enabled(true);
        drain();
        {
            let _a = crate::span!("first-epoch");
        }
        assert_eq!(drain_spans().len(), 1);
        {
            let _b = crate::span!("second-epoch");
            let _c = crate::span!("second-epoch");
        }
        set_profiling_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "second-epoch"));
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn ring_mode_keeps_newest_and_counts_dropped_exactly() {
        let _g = locked();
        set_profiling_enabled(true);
        drain();
        set_span_capacity(10);
        for i in 0..37 {
            let _s = crate::span!("ring", i = i);
        }
        set_span_capacity(0);
        set_profiling_enabled(false);
        let drained = drain();
        assert_eq!(drained.spans.len(), 10);
        assert_eq!(drained.dropped, 27);
        // The survivors are exactly the newest 10, in start order.
        let kept: Vec<&str> = drained.spans.iter().map(|s| s.args_str()).collect();
        let expect: Vec<String> = (27..37).map(|i| format!("i={i}")).collect();
        assert_eq!(kept, expect);
    }

    #[test]
    fn grows_past_one_chunk_without_loss() {
        let _g = locked();
        set_profiling_enabled(true);
        drain();
        let n = CHUNK * 2 + 100;
        for _ in 0..n {
            let _s = crate::span!("bulk");
        }
        set_profiling_enabled(false);
        let drained = drain();
        assert_eq!(drained.spans.len(), n);
        assert_eq!(drained.dropped, 0);
    }

    #[test]
    fn drain_is_sorted_across_threads() {
        let _g = locked();
        set_profiling_enabled(true);
        drain();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..50 {
                        let _s = crate::span!("mt", i = i);
                    }
                });
            }
        });
        set_profiling_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 200);
        assert!(spans
            .windows(2)
            .all(|w| (w[0].start_ns, w[0].tid) <= (w[1].start_ns, w[1].tid)));
        // Four distinct recording threads.
        let tids: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
    }
}
