//! Hierarchical timed spans with RAII guards.
//!
//! `span!("sequitur", rank = r)` returns a [`SpanGuard`]; dropping it
//! records a [`FinishedSpan`] into a process-global sink. When profiling
//! is disabled (the default) the macro performs a single relaxed atomic
//! load and returns an inert guard without formatting its arguments, so
//! instrumented hot paths stay effectively free.
//!
//! Timestamps are nanoseconds since the first use of the clock in this
//! process (a monotonic epoch), which maps directly onto the Chrome
//! trace-event `ts` field after dividing by 1000.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Master switch. Off by default; flipped by `--profile`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is span collection on? One relaxed load; call before doing any work
/// whose only purpose is feeding the profiler.
#[inline]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub fn set_profiling_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-local monotonic epoch.
#[inline]
pub fn clock_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread id for the Chrome `tid` field (the OS
    /// thread id is neither stable nor compact).
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn this_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// A completed span, ready for export.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    pub name: &'static str,
    /// Pre-formatted `key=value` pairs, empty if none.
    pub args: String,
    pub tid: u64,
    pub depth: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

static SINK: Mutex<Vec<FinishedSpan>> = Mutex::new(Vec::new());

/// Take all spans recorded so far, leaving the sink empty.
pub fn drain_spans() -> Vec<FinishedSpan> {
    std::mem::take(&mut SINK.lock().unwrap())
}

/// RAII guard returned by [`span!`]. Records the span on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when profiling was off at creation time.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    args: String,
    start_ns: u64,
    depth: u32,
}

impl SpanGuard {
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { live: None }
    }

    /// Start a span now. Prefer the [`span!`] macro, which skips argument
    /// formatting when profiling is off.
    pub fn start(name: &'static str, args: String) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            live: Some(LiveSpan { name, args, start_ns: clock_ns(), depth }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur_ns = clock_ns().saturating_sub(live.start_ns);
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            SINK.lock().unwrap().push(FinishedSpan {
                name: live.name,
                args: live.args,
                tid: this_tid(),
                depth: live.depth,
                start_ns: live.start_ns,
                dur_ns,
            });
        }
    }
}

/// Open a timed span: `let _g = span!("phase");` or
/// `let _g = span!("sequitur", rank = r, len = seq.len());`.
///
/// Argument values are captured with `Display` formatting, and only when
/// profiling is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::profiling_enabled() {
            $crate::SpanGuard::start($name, String::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::profiling_enabled() {
            let mut args = String::new();
            $(
                if !args.is_empty() { args.push(' '); }
                args.push_str(concat!(stringify!($key), "="));
                args.push_str(&format!("{}", $val));
            )+
            $crate::SpanGuard::start($name, args)
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        set_profiling_enabled(false);
        drain_spans();
        {
            let _g = crate::span!("quiet", x = 1);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn spans_nest_and_record() {
        set_profiling_enabled(true);
        drain_spans();
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner", rank = 3);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_profiling_enabled(false);
        let mut spans = drain_spans();
        spans.sort_by_key(|s| s.start_ns);
        assert_eq!(spans.len(), 2);
        // Inner drops first but starts second.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].args, "rank=3");
        assert!(spans[0].dur_ns >= spans[1].dur_ns);
        assert!(spans[1].dur_ns >= 1_000_000);
        assert_eq!(spans[0].tid, spans[1].tid);
    }
}
