//! Virtual-time exporters.
//!
//! Where `crate::chrome` exports *wall-clock* spans of the synthesis
//! pipeline, this module exports *virtual-time* intervals recorded by the
//! simulator's profiler (`crate::timeline`): one Chrome-trace track per
//! simulated rank with timestamps in virtual microseconds, plus a
//! deterministic per-call-class wait/transfer table for `--stats`-style
//! reports.
//!
//! Virtual timestamps are a pure function of the simulated program, so —
//! unlike the wall-clock exporters — these outputs need no separate
//! canonical form: they are byte-identical at any `--threads` width by
//! construction, provided the caller feeds spans in a deterministic order
//! (tracks ascending, events in program order).
//!
//! Above a track threshold the exporter *strides* the rank axis (every
//! k-th track) so a 64k-rank trace stays loadable; skipped tracks and
//! events are counted exactly and embedded in the trace metadata, the
//! same drop-accounting discipline as the flight recorder's ring mode.

use std::fmt::Write as _;

/// One exported interval: `track` is the Chrome `tid` (the simulated
/// rank), times are virtual nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct VtSpan {
    pub track: u32,
    /// Interval label (an MPI function name; must not need JSON escaping).
    pub name: &'static str,
    pub ts_ns: f64,
    pub dur_ns: f64,
    /// Blocked-wait portion of the interval, exported as an arg.
    pub wait_ns: f64,
    /// Payload bytes of the call, exported as an arg.
    pub bytes: u64,
}

/// Coverage accounting embedded in the exported trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct VtTraceMeta {
    pub tracks_total: usize,
    pub tracks_exported: usize,
    /// Events overwritten by ring-capped recording (before export).
    pub events_dropped: u64,
    /// Events on tracks elided by striding (at export).
    pub events_skipped: u64,
}

/// Stride for exporting `ntracks` tracks while emitting at most
/// `max_tracks` of them (`0` disables the cap). Tracks `0, s, 2s, …` are
/// kept, so rank 0 is always present.
pub fn export_stride(ntracks: usize, max_tracks: usize) -> usize {
    if max_tracks == 0 || ntracks <= max_tracks {
        1
    } else {
        ntracks.div_ceil(max_tracks)
    }
}

fn push_us(out: &mut String, ns: f64) {
    // Fixed microsecond formatting with nanosecond resolution: f64
    // formatting in Rust is deterministic across platforms.
    let _ = write!(out, "{:.3}", ns / 1000.0);
}

/// Render spans as a Chrome-trace JSON document in virtual time: complete
/// (`ph:"X"`) events, `pid` 0, one `tid` per track, `ts`/`dur` in virtual
/// microseconds. `spans` must already be filtered to the exported tracks
/// and ordered deterministically.
pub fn chrome_trace_json(spans: &[VtSpan], meta: &VtTraceMeta) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":",
            s.name, s.track
        );
        push_us(&mut out, s.ts_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, s.dur_ns);
        out.push_str(",\"args\":{\"wait_us\":");
        push_us(&mut out, s.wait_ns);
        let _ = write!(out, ",\"bytes\":{}}}}}", s.bytes);
    }
    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\":\"ms\",\n\"siestaVtMeta\":{{\"tracks_total\":{},\
         \"tracks_exported\":{},\"events_dropped\":{},\"events_skipped\":{}}}\n}}\n",
        meta.tracks_total, meta.tracks_exported, meta.events_dropped, meta.events_skipped
    );
    out
}

/// One row of the per-call-class wait/transfer table.
#[derive(Debug, Clone, Copy)]
pub struct ClassRow {
    pub name: &'static str,
    pub count: u64,
    /// Total virtual time inside calls of this class.
    pub total_ns: f64,
    /// Blocked-wait portion of `total_ns`.
    pub wait_ns: f64,
    pub bytes: u64,
}

/// Render the wait/transfer breakdown: per class, call count, total
/// virtual milliseconds, the blocked-wait and local transfer/overhead
/// split, and payload volume. Rows render in the order given (callers
/// sort; the table is part of deterministic artifacts).
pub fn render_class_table(rows: &[ClassRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "call class                  count    total ms     wait ms    xfer ms       bytes\n",
    );
    let mut count = 0u64;
    let (mut total, mut wait, mut bytes) = (0.0f64, 0.0f64, 0u64);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>11.3} {:>11.3} {:>10.3} {:>11}",
            r.name,
            r.count,
            r.total_ns / 1e6,
            r.wait_ns / 1e6,
            (r.total_ns - r.wait_ns) / 1e6,
            r.bytes
        );
        count += r.count;
        total += r.total_ns;
        wait += r.wait_ns;
        bytes += r.bytes;
    }
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>11.3} {:>11.3} {:>10.3} {:>11}",
        "total",
        count,
        total / 1e6,
        wait / 1e6,
        (total - wait) / 1e6,
        bytes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_covers_and_caps() {
        assert_eq!(export_stride(10, 0), 1);
        assert_eq!(export_stride(10, 16), 1);
        assert_eq!(export_stride(16, 16), 1);
        assert_eq!(export_stride(17, 16), 2);
        assert_eq!(export_stride(65536, 256), 256);
        // The kept set {0, s, 2s, …} never exceeds max_tracks.
        for n in [1usize, 7, 255, 256, 257, 1000, 65536] {
            let s = export_stride(n, 256);
            assert!(n.div_ceil(s) <= 256, "n={n} stride={s}");
        }
    }

    #[test]
    fn trace_json_shape_and_determinism() {
        let spans = [
            VtSpan { track: 0, name: "MPI_Send", ts_ns: 1500.0, dur_ns: 250.0, wait_ns: 0.0, bytes: 64 },
            VtSpan { track: 3, name: "MPI_Recv", ts_ns: 1000.0, dur_ns: 900.5, wait_ns: 700.5, bytes: 0 },
        ];
        let meta = VtTraceMeta { tracks_total: 4, tracks_exported: 2, events_dropped: 1, events_skipped: 5 };
        let a = chrome_trace_json(&spans, &meta);
        assert_eq!(a, chrome_trace_json(&spans, &meta));
        assert!(a.contains("\"tid\":3"));
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("\"dur\":0.900"));
        assert!(a.contains("\"events_skipped\":5"));
        assert!(a.contains("\"wait_us\":0.701"));
    }

    #[test]
    fn class_table_totals() {
        let rows = [
            ClassRow { name: "MPI_Send", count: 2, total_ns: 2e6, wait_ns: 0.5e6, bytes: 128 },
            ClassRow { name: "MPI_Recv", count: 1, total_ns: 1e6, wait_ns: 1e6, bytes: 0 },
        ];
        let t = render_class_table(&rows);
        assert!(t.contains("MPI_Send"));
        assert!(t.lines().last().unwrap().starts_with("total"));
        assert!(t.contains("3.000")); // total ms row
    }
}
