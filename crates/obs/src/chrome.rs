//! Chrome trace-event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format with complete
//! (`"ph":"X"`) events, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Timestamps and durations are microseconds,
//! as the format requires. JSON is written by hand — the only strings we
//! embed are span names and `key=value` args, escaped below.

use std::fmt::Write as _;
use std::io;

use crate::span::FinishedSpan;

/// Escape a string for inclusion in a JSON string literal.
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render spans as a Chrome trace-event JSON document.
pub fn chrome_trace_json(spans: &[FinishedSpan]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json_into(&mut out, s.name);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(
            &mut out,
            "{},\"ts\":{}.{:03},\"dur\":{}.{:03}",
            s.tid,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000
        );
        if !s.args.is_empty() {
            out.push_str(",\"args\":{\"args\":\"");
            escape_json_into(&mut out, &s.args);
            out.push_str("\"}");
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Write spans to `path` as Chrome trace-event JSON.
pub fn write_chrome_trace(path: &str, spans: &[FinishedSpan]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, args: &str, start_ns: u64, dur_ns: u64) -> FinishedSpan {
        FinishedSpan { name, args: args.to_string(), tid: 1, depth: 0, start_ns, dur_ns }
    }

    #[test]
    fn emits_complete_events_in_microseconds() {
        let spans = vec![
            span("trace", "", 1_500, 2_000_000),
            span("sequitur", "rank=3", 2_000_000, 10_500),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"trace\""));
        assert!(json.contains("\"ph\":\"X\""));
        // 1500 ns -> 1.500 us, 2_000_000 ns -> 2000.000 us.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains("\"args\":{\"args\":\"rank=3\"}"));
        // Balanced braces => structurally sound.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escapes_json_specials() {
        let spans = vec![span("weird", "msg=\"a\\b\n\"", 0, 1)];
        let json = chrome_trace_json(&spans);
        assert!(json.contains(r#"msg=\"a\\b\n\""#));
    }

    #[test]
    fn empty_span_list_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
