//! Chrome trace-event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format with complete
//! (`"ph":"X"`) events, loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Timestamps and durations are microseconds,
//! as the format requires. JSON is written by hand — the only strings we
//! embed are span names and `key=value` args, escaped below.
//!
//! Span args are interned ([`crate::intern`]): each event carries its
//! `u64` content-hash id (`argsId`) alongside the resolved string, and
//! the document ends with a `siestaArgTable` section mapping every id
//! used in the trace to its string, sorted by id. Because ids are
//! content hashes, the table — like the span order produced by
//! [`crate::span::drain`] — is deterministic.

use std::fmt::Write as _;
use std::io;

use crate::intern::ArgsId;
use crate::span::FinishedSpan;

/// Escape a string for inclusion in a JSON string literal.
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render spans as a Chrome trace-event JSON document.
pub fn chrome_trace_json(spans: &[FinishedSpan]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json_into(&mut out, s.name);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(
            &mut out,
            "{},\"ts\":{}.{:03},\"dur\":{}.{:03}",
            s.tid,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000
        );
        if !s.args.is_none() {
            let _ = write!(&mut out, ",\"args\":{{\"argsId\":\"{}\",\"args\":\"", s.args.0);
            escape_json_into(&mut out, s.args_str());
            out.push_str("\"}");
        }
        out.push('}');
    }
    out.push_str("\n],\"siestaArgTable\":{");
    // Only ids this trace references, in id order (ids are content
    // hashes, so the section is byte-stable for a given span set).
    let mut ids: Vec<ArgsId> = spans.iter().map(|s| s.args).filter(|a| !a.is_none()).collect();
    ids.sort_unstable();
    ids.dedup();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(&mut out, "\n\"{}\":\"", id.0);
        escape_json_into(&mut out, crate::intern::resolve(*id));
        out.push('"');
    }
    if ids.is_empty() {
        out.push_str("}}\n");
    } else {
        out.push_str("\n}}\n");
    }
    out
}

/// Canonical (timing-free) trace: spans reduced to `(name, args)` pairs
/// sorted lexicographically, with ordinal timestamps, zero durations, and
/// `tid` 0. Two runs that execute the same logical work produce
/// byte-identical canonical traces regardless of thread width or wall
/// clock — the form the cross-width differential test compares.
pub fn chrome_trace_json_canonical(spans: &[FinishedSpan]) -> String {
    let mut work: Vec<(&'static str, &'static str, ArgsId)> =
        spans.iter().map(|s| (s.name, s.args_str(), s.args)).collect();
    work.sort_unstable();
    let canonical: Vec<FinishedSpan> = work
        .into_iter()
        .enumerate()
        .map(|(i, (name, _args_str, args))| FinishedSpan {
            name,
            args,
            tid: 0,
            depth: 0,
            start_ns: (i as u64) * 1_000,
            dur_ns: 0,
        })
        .collect();
    chrome_trace_json(&canonical)
}

/// Write spans to `path` as Chrome trace-event JSON.
pub fn write_chrome_trace(path: &str, spans: &[FinishedSpan]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::intern;

    fn span(name: &'static str, args: &str, start_ns: u64, dur_ns: u64) -> FinishedSpan {
        FinishedSpan { name, args: intern(args), tid: 1, depth: 0, start_ns, dur_ns }
    }

    #[test]
    fn emits_complete_events_in_microseconds() {
        let spans = vec![
            span("trace", "", 1_500, 2_000_000),
            span("sequitur", "rank=3", 2_000_000, 10_500),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"trace\""));
        assert!(json.contains("\"ph\":\"X\""));
        // 1500 ns -> 1.500 us, 2_000_000 ns -> 2000.000 us.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains("\"args\":\"rank=3\""));
        // Balanced braces => structurally sound.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn arg_table_lists_referenced_ids() {
        let spans = vec![span("a", "rank=1", 0, 1), span("b", "rank=2", 1, 1)];
        let json = chrome_trace_json(&spans);
        let id1 = intern("rank=1").0;
        let id2 = intern("rank=2").0;
        assert!(json.contains("\"siestaArgTable\":{"));
        assert!(json.contains(&format!("\"{id1}\":\"rank=1\"")));
        assert!(json.contains(&format!("\"{id2}\":\"rank=2\"")));
        assert!(json.contains(&format!("\"argsId\":\"{id1}\"")));
    }

    #[test]
    fn escapes_json_specials() {
        let spans = vec![span("weird", "msg=\"a\\b\n\"", 0, 1)];
        let json = chrome_trace_json(&spans);
        assert!(json.contains(r#"msg=\"a\\b\n\""#));
    }

    #[test]
    fn empty_span_list_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n],\"siestaArgTable\":{}}\n");
    }

    #[test]
    fn canonical_is_order_and_timing_independent() {
        let a = vec![span("x", "k=1", 100, 50), span("y", "", 7, 3)];
        let b = vec![span("y", "", 900, 1), span("x", "k=1", 2, 2)];
        let ja = chrome_trace_json_canonical(&a);
        let jb = chrome_trace_json_canonical(&b);
        assert_eq!(ja, jb);
        assert!(ja.contains("\"dur\":0.000"));
        assert!(ja.contains("\"tid\":0"));
    }
}
