//! Exclusive ("self") time for nested spans.
//!
//! A span's duration is *inclusive*: `proxy-search` contains every
//! `fit-candidate` recorded inside it, so sorting phases by total time
//! makes outer spans dominate their own children. Self time subtracts
//! each span's **direct children** — time attributed to exactly one
//! phase — which is what the `--stats` report needs to show where the
//! pipeline actually spends its cycles.
//!
//! The computation is per thread: spans on one thread nest strictly
//! (RAII guards), so a containment-ordered stack walk attributes every
//! child to its nearest enclosing span in one pass.

use std::collections::BTreeMap;

use crate::span::FinishedSpan;

/// Does `outer` strictly contain `inner` on the same thread? Uses the
/// recorded nesting depth to break ties when a zero-duration parent and
/// its child share a timestamp.
fn contains(outer: &FinishedSpan, inner: &FinishedSpan) -> bool {
    outer.depth < inner.depth
        && outer.start_ns <= inner.start_ns
        && inner.start_ns.saturating_add(inner.dur_ns)
            <= outer.start_ns.saturating_add(outer.dur_ns)
}

/// Exclusive nanoseconds for each span: `dur_ns` minus the durations of
/// its direct children. Returned parallel to the input slice (any order
/// is accepted; grouping and ordering happen internally).
pub fn self_times(spans: &[FinishedSpan]) -> Vec<u64> {
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();

    let mut by_tid: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_tid.entry(s.tid).or_default().push(i);
    }

    for idxs in by_tid.into_values() {
        let mut idxs = idxs;
        // Parents before children: earlier start first, outer depth first
        // on a shared timestamp.
        idxs.sort_by_key(|&i| (spans[i].start_ns, spans[i].depth));
        // Stack of open spans, each containing the next.
        let mut stack: Vec<usize> = Vec::new();
        for &i in &idxs {
            while let Some(&top) = stack.last() {
                if contains(&spans[top], &spans[i]) {
                    break;
                }
                stack.pop();
            }
            if let Some(&parent) = stack.last() {
                self_ns[parent] = self_ns[parent].saturating_sub(spans[i].dur_ns);
            }
            stack.push(i);
        }
    }
    self_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::ArgsId;

    fn span(tid: u32, depth: u32, start_ns: u64, dur_ns: u64) -> FinishedSpan {
        FinishedSpan { name: "s", args: ArgsId::NONE, tid, depth, start_ns, dur_ns }
    }

    #[test]
    fn nested_chain_subtracts_direct_children_only() {
        // parent [0,100) > child [10,40) > grandchild [15,25).
        let spans =
            vec![span(1, 0, 0, 100), span(1, 1, 10, 30), span(1, 2, 15, 10)];
        assert_eq!(self_times(&spans), vec![70, 20, 10]);
    }

    #[test]
    fn siblings_subtract_from_parent() {
        let spans = vec![span(1, 0, 0, 100), span(1, 1, 10, 20), span(1, 1, 40, 30)];
        assert_eq!(self_times(&spans), vec![50, 20, 30]);
    }

    #[test]
    fn threads_are_independent() {
        // Identical intervals on two tids must not shadow each other.
        let spans = vec![span(1, 0, 0, 100), span(2, 1, 10, 20)];
        assert_eq!(self_times(&spans), vec![100, 20]);
    }

    #[test]
    fn zero_duration_parent_ties_break_by_depth() {
        let spans = vec![span(1, 0, 5, 0), span(1, 1, 5, 0)];
        assert_eq!(self_times(&spans), vec![0, 0]);
    }

    #[test]
    fn leaf_self_equals_duration() {
        let spans = vec![span(1, 0, 0, 42)];
        assert_eq!(self_times(&spans), vec![42]);
    }
}
