//! Leveled logging on a single global atomic.
//!
//! The level is read with one relaxed load per call site, so disabled
//! levels cost a compare-and-branch and format nothing. The level is
//! initialised lazily from the `SIESTA_LOG` environment variable
//! (`error|warn|info|debug|trace|off`) and can be overridden by the CLI's
//! `--log-level` flag via [`set_level_from_str`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered so that `level as u8` comparisons work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    pub fn from_str_loose(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "err" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// `UNINIT` until first use (then `SIESTA_LOG` is consulted); afterwards a
/// `Level` value, or `OFF` (below `Error`) to silence everything.
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
const UNINIT: u8 = u8::MAX;
const OFF: u8 = 0;
const DEFAULT: u8 = Level::Info as u8;

#[cold]
fn init_from_env() -> u8 {
    let lvl = match std::env::var("SIESTA_LOG") {
        Ok(v) if v.trim().eq_ignore_ascii_case("off") => OFF,
        Ok(v) => Level::from_str_loose(&v).map(|l| l as u8).unwrap_or(DEFAULT),
        Err(_) => DEFAULT,
    };
    // Racing initialisers agree on the value unless set_level ran in
    // between; keep whatever is there in that case.
    let _ = LEVEL.compare_exchange(UNINIT, lvl, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

#[inline]
fn current() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        UNINIT => init_from_env(),
        v => v,
    }
}

/// Is `level` currently enabled? One relaxed load on the fast path.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= current()
}

/// Set the level explicitly (CLI `--log-level`); overrides `SIESTA_LOG`.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Silence all logging (CLI `--quiet`).
pub fn set_off() {
    LEVEL.store(OFF, Ordering::Relaxed);
}

/// Parse and set; returns false (leaving the level unchanged) on an
/// unrecognised name other than "off".
pub fn set_level_from_str(s: &str) -> bool {
    if s.trim().eq_ignore_ascii_case("off") {
        set_off();
        return true;
    }
    match Level::from_str_loose(s) {
        Some(l) => {
            set_level(l);
            true
        }
        None => false,
    }
}

/// Implementation detail of the logging macros.
pub fn log_at(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[siesta {:<5}] {}", level.as_str(), args);
}

#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::log_at($crate::Level::Error, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log_at($crate::Level::Warn, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log_at($crate::Level::Info, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log_at($crate::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Trace) {
            $crate::log::log_at($crate::Level::Trace, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::from_str_loose("WARN"), Some(Level::Warn));
        assert_eq!(Level::from_str_loose(" debug "), Some(Level::Debug));
        assert_eq!(Level::from_str_loose("warning"), Some(Level::Warn));
        assert_eq!(Level::from_str_loose("nope"), None);
    }

    #[test]
    fn set_and_query() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Trace);
        assert!(enabled(Level::Trace));
        assert!(set_level_from_str("off"));
        assert!(!enabled(Level::Error));
        assert!(!set_level_from_str("bogus"));
        set_level(Level::Info);
    }
}
