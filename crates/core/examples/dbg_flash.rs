use siesta_core::{Siesta, SiestaConfig};
use siesta_codegen::{replay, TerminalOp};
use siesta_perfmodel::{platform_a, Machine, MpiFlavor};
use siesta_proxy::ProxySearcher;
use siesta_workloads::{ProblemSize, Program};

fn main() {
    let m = Machine::new(platform_a(), MpiFlavor::OpenMpi);
    for (program, np) in [(Program::Sod, 16), (Program::StirTurb, 64)] {
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) = siesta.synthesize_run(m, np, program.body(ProblemSize::Small));
        let s = ProxySearcher::new(&m);
        println!("== {} @{np}", program.name());
        for (i, t) in synthesis.program.terminals.iter().enumerate() {
            if let TerminalOp::Compute { proxy, target } = t {
                let pred = s.predict(proxy, &m);
                let err = pred.mean_relative_error(target);
                if err > 0.10 {
                    println!("ev{i}: err={err:.3}\n  tgt {target}\n  prd {pred}");
                }
            }
        }
        let original = program.run(m, np, ProblemSize::Small);
        let proxy = replay(&synthesis.program, m);
        println!("counter err = {:.3}", proxy.mean_counter_error(&original));
        println!("orig r0: {}", original.per_rank[0].counters);
        println!("prox r0: {}", proxy.per_rank[0].counters);
    }
}
