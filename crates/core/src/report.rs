//! Error metrics and human-readable formatting (the paper's Section 3
//! measures).

use siesta_mpisim::RunStats;
use siesta_perfmodel::{METRICS, MEASUREMENT_FLOOR};

/// Percentage time error `100·|T_gen − T_app| / T_app` (Figs 6–9).
pub fn time_error_pct(generated: &RunStats, original: &RunStats) -> f64 {
    100.0 * generated.time_error(original)
}

/// Percentage time error against a *reproduced* time (e.g. a scaled proxy's
/// elapsed time multiplied back by its factor).
pub fn reproduced_time_error_pct(reproduced_ns: f64, original: &RunStats) -> f64 {
    let t = original.elapsed_ns();
    if t == 0.0 {
        return 0.0;
    }
    100.0 * (reproduced_ns - t).abs() / t
}

/// The Table 3 "Error" column: mean relative counter error across all
/// metrics and processes, in percent.
pub fn counter_error_pct(generated: &RunStats, original: &RunStats) -> f64 {
    100.0 * generated.mean_counter_error(original)
}

/// Per-metric relative error (percent) between two runs, averaged over
/// ranks; `None` for metrics below the measurement floor everywhere.
pub fn per_metric_error_pct(
    generated: &RunStats,
    original: &RunStats,
) -> [(&'static str, Option<f64>); 6] {
    let mut out = [("", None); 6];
    for (i, metric) in METRICS.iter().enumerate() {
        let mut total = 0.0;
        let mut n = 0usize;
        for (g, o) in generated.per_rank.iter().zip(&original.per_rank) {
            let reference = o.counters.get(*metric);
            if reference > MEASUREMENT_FLOOR {
                total += (g.counters.get(*metric) - reference).abs() / reference;
                n += 1;
            }
        }
        out[i] = (
            metric.name(),
            if n > 0 { Some(100.0 * total / n as f64) } else { None },
        );
    }
    out
}

/// Format a byte count like the paper's tables ("290 MB", "221 KB").
pub fn human_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} GB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1} MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Format virtual nanoseconds as milliseconds with sensible precision.
pub fn human_ms(ns: f64) -> String {
    format!("{:.2} ms", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_mpisim::RankStats;
    use siesta_perfmodel::CounterVec;

    fn run_with(counters: CounterVec) -> RunStats {
        RunStats {
            per_rank: vec![RankStats {
                rank: 0,
                finish_ns: 1.0,
                counters,
                compute_ns: 1.0,
                mpi_ns: 0.0,
                wait_ns: 0.0,
                app_calls: 1,
                bytes_sent: 0,
                compute_events: 1,
                sched_hash: 0,
            }],
        }
    }

    #[test]
    fn per_metric_errors_and_floor() {
        let original = run_with(CounterVec::new(1e6, 2e6, 5e5, 500.0, 1e4, 2e3));
        let generated = run_with(CounterVec::new(1.1e6, 2e6, 4e5, 0.0, 1e4, 1e3));
        let report = per_metric_error_pct(&generated, &original);
        assert_eq!(report[0].0, "INS");
        assert!((report[0].1.unwrap() - 10.0).abs() < 1e-9);
        assert!((report[1].1.unwrap() - 0.0).abs() < 1e-9);
        assert!((report[2].1.unwrap() - 20.0).abs() < 1e-9);
        // L1_DCM reference (500) is below the measurement floor: skipped.
        assert_eq!(report[3], ("L1_DCM", None));
        assert!((report[5].1.unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn time_error_helpers() {
        let a = run_with(CounterVec::ZERO);
        let mut b = run_with(CounterVec::ZERO);
        b.per_rank[0].finish_ns = 1.2;
        assert!((time_error_pct(&b, &a) - 20.0).abs() < 1e-9);
        assert!((reproduced_time_error_pct(0.9, &a) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.0 GB");
    }

    #[test]
    fn human_ms_format() {
        assert_eq!(human_ms(1_500_000.0), "1.50 ms");
    }
}
