//! The end-to-end Siesta pipeline (paper Figure 1).
//!
//! ```text
//! MPI program ──trace──▶ per-rank event tables + id sequences
//!              ──merge──▶ global terminal table (log₂P tree)
//!            ──Sequitur─▶ per-rank run-length grammars
//!              ──merge──▶ job-wide grammar with rank-listed main rules
//!       ──proxy search──▶ block combinations per computation event
//!            ──codegen──▶ ProxyProgram (C source + replayable IR)
//! ```

use std::sync::Arc;

use siesta_codegen::{ProxyProgram, TerminalOp};
use siesta_grammar::{build_rank_grammars, merge_grammars, Grammar, MergeConfig};
use siesta_mpisim::{FanoutHook, ObsHook, PmpiHook, Rank, RankFut, RunStats, World};
use siesta_obs::{histogram, profiling_enabled, span};
use siesta_perfmodel::Machine;
use siesta_proxy::{shrink_counters, CommShrink, ProxySearcher, BLOCKS_C_SOURCE};
use siesta_trace::{
    merge_streamed, merge_tables, serialize, CommEvent, EventRecord, GlobalTrace, Recorder,
    StreamedGlobal, StreamedTrace, Trace, TraceConfig,
};

/// Configuration of one synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SiestaConfig {
    pub trace: TraceConfig,
    pub merge: MergeConfig,
    /// Shrinking factor (Section 2.7): 1.0 emits a full-size proxy; the
    /// paper's default shrunk proxy uses 10.0.
    pub scale: f64,
    /// Cross-rank grammar memoization: SPMD jobs repeat whole id sequences
    /// across ranks, so Sequitur runs once per *unique* sequence and the
    /// result is cloned for every duplicate rank. Bit-identical output
    /// either way (Sequitur is a pure function of its input); off is only
    /// useful for benchmarking and differential testing.
    pub grammar_memo: bool,
    /// Streaming ingest: interned event ids feed each rank's Sequitur as
    /// calls complete, so the flat per-rank id sequences never materialize
    /// — peak memory is bounded by the compressed grammars plus one stream
    /// buffer per rank. Output is byte-identical to the materialized path
    /// (which `--no-stream` keeps available as the differential oracle).
    pub stream: bool,
}

impl Default for SiestaConfig {
    fn default() -> Self {
        SiestaConfig {
            trace: TraceConfig::default(),
            merge: MergeConfig::default(),
            scale: 1.0,
            grammar_memo: true,
            stream: true,
        }
    }
}

impl SiestaConfig {
    /// The paper's Siesta-scaled configuration (factor 10).
    pub fn scaled() -> SiestaConfig {
        SiestaConfig { scale: 10.0, ..SiestaConfig::default() }
    }
}

/// Size and quality accounting of one synthesis (feeds Table 3).
#[derive(Debug, Clone)]
pub struct SynthesisStats {
    /// Modeled size of the uncompressed trace files.
    pub raw_trace_bytes: usize,
    /// Modeled size of the exported compressed representation: terminal
    /// table + grammar + computation block code (the paper's `size_C`).
    pub size_c_bytes: usize,
    pub num_terminals: usize,
    pub num_comm_terminals: usize,
    pub num_compute_terminals: usize,
    pub num_rules: usize,
    pub num_mains: usize,
    pub grammar_size: usize,
    /// ⌈log₂P⌉ table-merge rounds.
    pub merge_rounds: u32,
    /// Mean proxy fit error over compute terminals (generation machine).
    pub mean_fit_error: f64,
}

impl SynthesisStats {
    /// Compression ratio raw-trace : size_C.
    pub fn compression_ratio(&self) -> f64 {
        self.raw_trace_bytes as f64 / self.size_c_bytes.max(1) as f64
    }
}

/// A completed synthesis: the proxy program plus its accounting.
#[derive(Debug, Clone)]
pub struct Synthesis {
    pub program: ProxyProgram,
    pub stats: SynthesisStats,
}

/// The Siesta synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Siesta {
    pub config: SiestaConfig,
}

impl Siesta {
    pub fn new(config: SiestaConfig) -> Siesta {
        Siesta { config }
    }

    /// Trace an MPI program: runs it with the PMPI recorder installed.
    /// Returns the trace and the (instrumented) run statistics.
    pub fn trace_run<'env, F>(&self, machine: Machine, nranks: usize, body: F) -> (Trace, RunStats)
    where
        F: Fn(Rank) -> RankFut<'env> + Send + Sync,
    {
        let _span = span!("trace", nranks = nranks);
        let recorder = Arc::new(Recorder::new(nranks, self.config.trace));
        // With profiling (or comm-matrix / virtual-time-profile
        // collection) on, stack the observers under the recorder the way
        // PMPI tools chain; otherwise install the recorder alone.
        let sim_profile = siesta_mpisim::sim_profile_enabled();
        let hook: Arc<dyn PmpiHook> = if profiling_enabled()
            || siesta_mpisim::comm_matrix_enabled()
            || sim_profile
        {
            let mut hooks: Vec<Arc<dyn PmpiHook>> =
                vec![recorder.clone(), Arc::new(ObsHook::new(nranks))];
            if sim_profile {
                hooks.push(siesta_mpisim::SimProfiler::install(nranks));
            }
            Arc::new(FanoutHook::new(hooks))
        } else {
            recorder.clone()
        };
        let stats = World::new(machine, nranks).with_hook(hook).run(body);
        (recorder.finish(), stats)
    }

    /// Trace an MPI program with streaming ingest: the recorder feeds each
    /// rank's interned event ids straight into its online Sequitur as calls
    /// complete, flushing a bounded buffer — the flat id sequences never
    /// exist. Returns per-rank tables + local-id grammars.
    pub fn trace_run_streamed<'env, F>(
        &self,
        machine: Machine,
        nranks: usize,
        body: F,
    ) -> (StreamedTrace, RunStats)
    where
        F: Fn(Rank) -> RankFut<'env> + Send + Sync,
    {
        let _span = span!("trace", nranks = nranks);
        let recorder = Arc::new(Recorder::new_streaming(nranks, self.config.trace));
        let sim_profile = siesta_mpisim::sim_profile_enabled();
        let hook: Arc<dyn PmpiHook> = if profiling_enabled()
            || siesta_mpisim::comm_matrix_enabled()
            || sim_profile
        {
            let mut hooks: Vec<Arc<dyn PmpiHook>> =
                vec![recorder.clone(), Arc::new(ObsHook::new(nranks))];
            if sim_profile {
                hooks.push(siesta_mpisim::SimProfiler::install(nranks));
            }
            Arc::new(FanoutHook::new(hooks))
        } else {
            recorder.clone()
        };
        let stats = World::new(machine, nranks).with_hook(hook).run(body);
        (recorder.finish_streamed(), stats)
    }

    /// Synthesize a proxy-app from a trace. `gen_machine` is the machine
    /// the proxy is generated on (block micro-benchmarks and the comm
    /// shrinking regression run there).
    pub fn synthesize(&self, trace: Trace, gen_machine: &Machine) -> Synthesis {
        let global = self.merge_trace(trace);
        self.synthesize_global(global, gen_machine)
    }

    /// The materialized table merge (span-wrapped twin of
    /// [`merge_streamed`](Siesta::merge_streamed)).
    pub fn merge_trace(&self, trace: Trace) -> GlobalTrace {
        let _span = span!("table-merge", nranks = trace.nranks);
        merge_tables(trace)
    }

    /// Synthesize from an already-merged (possibly loaded-from-disk)
    /// [`GlobalTrace`] — the offline half of the paper's workflow: collect
    /// the trace on the production system, synthesize anywhere.
    pub fn synthesize_global(&self, global: GlobalTrace, gen_machine: &Machine) -> Synthesis {
        let _span = span!("synthesize", nranks = global.nranks);
        // Width is reported as a gauge, never as a span arg: span args are
        // part of the canonical (cross-width byte-identical) trace, and
        // `par.threads` is exactly the thing allowed to vary between runs.
        siesta_obs::gauge("par.threads").set(siesta_par::threads() as i64);

        // Intra-process grammars (one pool task per unique sequence), then
        // the inter-process merge. Collection is index-ordered and
        // memoization assigns in first-seen order, so the merged grammar is
        // identical at any thread count, memo on or off.
        let grammars: Vec<Grammar> = {
            let _span = span!("sequitur-fanout", ranks = global.nranks);
            siesta_obs::counter("par.sequitur.tasks").add(global.seqs.len() as u64);
            build_rank_grammars(&global.seqs, self.config.grammar_memo)
        };
        self.finish_synthesis(
            global.nranks,
            &global.table,
            global.raw_bytes,
            global.merge_rounds,
            &grammars,
            gen_machine,
        )
    }

    /// Synthesize from a streamed trace. The per-rank grammars already
    /// exist (built online during the run); the table merge lifts them to
    /// global ids by terminal relabeling instead of re-running Sequitur,
    /// sharing one lifted grammar across ranks whose streams hashed
    /// identical when `grammar_memo` is on.
    pub fn synthesize_streamed(&self, st: StreamedTrace, gen_machine: &Machine) -> Synthesis {
        let sg = self.merge_streamed(st);
        self.synthesize_streamed_global(sg, gen_machine)
    }

    /// The streaming table merge + grammar lift, exposed separately so
    /// callers can write the trace store from the [`StreamedGlobal`] before
    /// synthesis consumes it.
    pub fn merge_streamed(&self, st: StreamedTrace) -> StreamedGlobal {
        let _span = span!("table-merge", nranks = st.nranks);
        merge_streamed(st, self.config.grammar_memo)
    }

    /// Back half of [`synthesize_streamed`], from an already-merged
    /// streamed trace.
    pub fn synthesize_streamed_global(
        &self,
        sg: StreamedGlobal,
        gen_machine: &Machine,
    ) -> Synthesis {
        let _span = span!("synthesize", nranks = sg.nranks);
        siesta_obs::gauge("par.threads").set(siesta_par::threads() as i64);
        self.finish_synthesis(
            sg.nranks,
            &sg.table,
            sg.raw_bytes,
            sg.merge_rounds,
            &sg.grammars,
            gen_machine,
        )
    }

    /// Shared synthesis back half: inter-process grammar merge, proxy
    /// search, codegen, accounting. Both ingest modes land here with the
    /// same (byte-identical) table and per-rank grammars.
    fn finish_synthesis(
        &self,
        nranks: usize,
        table: &[EventRecord],
        raw_bytes: usize,
        merge_rounds: u32,
        grammars: &[Grammar],
        gen_machine: &Machine,
    ) -> Synthesis {
        let merged = {
            let _span = span!("grammar-merge", grammars = grammars.len());
            merge_grammars(grammars, &self.config.merge)
        };

        // Computation proxies and communication shrinking. The QP solves
        // fan out over unique counter vectors (batch dedup inside
        // `search_batch`); error accounting stays on this thread, in table
        // order, so the float sums are reproducible.
        let proxy_span = span!("proxy-search", events = table.len());
        let searcher = ProxySearcher::new(gen_machine);
        let comm_shrink = CommShrink::fit(&gen_machine.net);
        let fit_error_hist = histogram("proxy.fit_error_bp");
        let mut fit_error_sum = 0.0;
        let mut fit_error_n = 0usize;
        let compute_targets: Vec<_> = table
            .iter()
            .filter_map(|rec| match rec {
                EventRecord::Compute(stats) => {
                    Some(shrink_counters(&stats.mean(), self.config.scale))
                }
                EventRecord::Comm(_) => None,
            })
            .collect();
        let proxies = searcher.search_batch(&compute_targets);
        let mut solved = compute_targets.iter().zip(proxies);
        let terminals: Vec<TerminalOp> = table
            .iter()
            .map(|rec| match rec {
                EventRecord::Compute(_) => {
                    let (target, proxy) = solved.next().expect("one proxy per compute event");
                    let err = searcher.error(&proxy, target, gen_machine);
                    if profiling_enabled() {
                        // Fit error in basis points (1e-4), so the log2
                        // histogram resolves the sub-percent range.
                        fit_error_hist.record((err * 1e4).round().max(0.0) as u64);
                    }
                    fit_error_sum += err;
                    fit_error_n += 1;
                    TerminalOp::Compute { proxy, target: *target }
                }
                EventRecord::Comm(e) => {
                    TerminalOp::Comm(shrink_comm(e, &comm_shrink, self.config.scale))
                }
            })
            .collect();
        drop(proxy_span);

        let _codegen_span = span!("codegen", terminals = terminals.len());
        let program = ProxyProgram {
            nranks,
            terminals,
            rules: merged.rules.clone(),
            mains: merged.mains.clone(),
            scale: self.config.scale,
            generated_on: gen_machine.label(),
        };

        let stats = SynthesisStats {
            raw_trace_bytes: raw_bytes,
            size_c_bytes: size_c(table, &program),
            num_terminals: program.terminals.len(),
            num_comm_terminals: program.comm_terminals(),
            num_compute_terminals: program.compute_terminals(),
            num_rules: program.rules.len(),
            num_mains: program.mains.len(),
            grammar_size: program.grammar_size(),
            merge_rounds,
            mean_fit_error: if fit_error_n > 0 {
                fit_error_sum / fit_error_n as f64
            } else {
                0.0
            },
        };
        Synthesis { program, stats }
    }

    /// Convenience: trace a program and synthesize in one step, honouring
    /// `config.stream` (streaming ingest by default; the materialized path
    /// with `stream: false`). Both produce byte-identical syntheses.
    pub fn synthesize_run<'env, F>(
        &self,
        machine: Machine,
        nranks: usize,
        body: F,
    ) -> (Synthesis, RunStats)
    where
        F: Fn(Rank) -> RankFut<'env> + Send + Sync,
    {
        if self.config.stream {
            let (st, traced_stats) = self.trace_run_streamed(machine, nranks, body);
            (self.synthesize_streamed(st, &machine), traced_stats)
        } else {
            let (trace, traced_stats) = self.trace_run(machine, nranks, body);
            (self.synthesize(trace, &machine), traced_stats)
        }
    }
}

/// The exported representation size (`size_C`): terminal table + serialized
/// grammar symbols + main-rule rank lists + the block code emitted once.
fn size_c(table: &[EventRecord], program: &ProxyProgram) -> usize {
    let table = serialize::table_bytes(table);
    let rule_syms: usize = program.rules.iter().map(|r| r.len()).sum();
    let main_syms: usize = program.mains.iter().map(|m| m.body.len()).sum();
    let rank_ranges: usize = program
        .mains
        .iter()
        .flat_map(|m| m.body.iter())
        .map(|s| s.ranks.ranges().len())
        .sum();
    table
        + (rule_syms + main_syms) * serialize::GRAMMAR_SYM_BYTES
        + rank_ranges * serialize::RANK_RANGE_BYTES
        + BLOCKS_C_SOURCE.len()
}

/// Shrink the volume of a communication event by the scaling factor
/// (Section 2.7). Point-to-point and rooted/unrooted collective volumes go
/// through the regression model; `alltoallv` count vectors shrink
/// proportionally (their per-peer chunks are below the regression's
/// latency floor).
fn shrink_comm(e: &CommEvent, s: &CommShrink, k: f64) -> CommEvent {
    if k <= 1.0 {
        return e.clone();
    }
    let sh = |b: u64| s.shrink_bytes(b, k);
    match e {
        CommEvent::Send { rel, tag, bytes, comm } => {
            CommEvent::Send { rel: *rel, tag: *tag, bytes: sh(*bytes), comm: *comm }
        }
        CommEvent::Recv { rel, tag, bytes, comm } => {
            CommEvent::Recv { rel: *rel, tag: *tag, bytes: sh(*bytes), comm: *comm }
        }
        CommEvent::Isend { rel, tag, bytes, comm, req } => CommEvent::Isend {
            rel: *rel,
            tag: *tag,
            bytes: sh(*bytes),
            comm: *comm,
            req: *req,
        },
        CommEvent::Irecv { rel, tag, bytes, comm, req } => CommEvent::Irecv {
            rel: *rel,
            tag: *tag,
            bytes: sh(*bytes),
            comm: *comm,
            req: *req,
        },
        CommEvent::Sendrecv {
            dest_rel,
            send_tag,
            send_bytes,
            src_rel,
            recv_tag,
            recv_bytes,
            comm,
        } => CommEvent::Sendrecv {
            dest_rel: *dest_rel,
            send_tag: *send_tag,
            send_bytes: sh(*send_bytes),
            src_rel: *src_rel,
            recv_tag: *recv_tag,
            recv_bytes: sh(*recv_bytes),
            comm: *comm,
        },
        CommEvent::Bcast { comm, root, bytes } => {
            CommEvent::Bcast { comm: *comm, root: *root, bytes: sh(*bytes) }
        }
        CommEvent::Reduce { comm, root, bytes } => {
            CommEvent::Reduce { comm: *comm, root: *root, bytes: sh(*bytes) }
        }
        CommEvent::Allreduce { comm, bytes } => {
            CommEvent::Allreduce { comm: *comm, bytes: sh(*bytes) }
        }
        CommEvent::Allgather { comm, bytes } => {
            CommEvent::Allgather { comm: *comm, bytes: sh(*bytes) }
        }
        CommEvent::Alltoall { comm, bytes_per_peer } => {
            CommEvent::Alltoall { comm: *comm, bytes_per_peer: sh(*bytes_per_peer) }
        }
        CommEvent::Alltoallv { comm, send_counts, recv_counts } => CommEvent::Alltoallv {
            comm: *comm,
            send_counts: send_counts.iter().map(|&c| (c as f64 / k).round() as u64).collect(),
            recv_counts: recv_counts.iter().map(|&c| (c as f64 / k).round() as u64).collect(),
        },
        CommEvent::Gather { comm, root, bytes } => {
            CommEvent::Gather { comm: *comm, root: *root, bytes: sh(*bytes) }
        }
        CommEvent::Scatter { comm, root, bytes } => {
            CommEvent::Scatter { comm: *comm, root: *root, bytes: sh(*bytes) }
        }
        CommEvent::Gatherv { comm, root, counts } => CommEvent::Gatherv {
            comm: *comm,
            root: *root,
            counts: counts.iter().map(|&c| (c as f64 / k).round() as u64).collect(),
        },
        CommEvent::Scatterv { comm, root, counts } => CommEvent::Scatterv {
            comm: *comm,
            root: *root,
            counts: counts.iter().map(|&c| (c as f64 / k).round() as u64).collect(),
        },
        CommEvent::Scan { comm, bytes } => CommEvent::Scan { comm: *comm, bytes: sh(*bytes) },
        CommEvent::ReduceScatterBlock { comm, bytes_per_rank } => {
            CommEvent::ReduceScatterBlock { comm: *comm, bytes_per_rank: sh(*bytes_per_rank) }
        }
        // Zero-volume and management events are untouched.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(raw: usize, size_c: usize) -> SynthesisStats {
        SynthesisStats {
            raw_trace_bytes: raw,
            size_c_bytes: size_c,
            num_terminals: 0,
            num_comm_terminals: 0,
            num_compute_terminals: 0,
            num_rules: 0,
            num_mains: 0,
            grammar_size: 0,
            merge_rounds: 0,
            mean_fit_error: 0.0,
        }
    }

    #[test]
    fn compression_ratio_normal() {
        assert_eq!(stats(1000, 100).compression_ratio(), 10.0);
    }

    #[test]
    fn compression_ratio_zero_size_c_does_not_divide_by_zero() {
        let r = stats(1000, 0).compression_ratio();
        assert!(r.is_finite());
        assert_eq!(r, 1000.0); // clamped denominator of 1
    }

    #[test]
    fn compression_ratio_both_zero() {
        assert_eq!(stats(0, 0).compression_ratio(), 0.0);
    }

    #[test]
    fn compression_ratio_expanding_representation() {
        // A representation larger than the trace gives a ratio < 1, not an
        // error: tiny programs can legitimately expand.
        let r = stats(10, 100).compression_ratio();
        assert!(r < 1.0 && r > 0.0);
    }
}
