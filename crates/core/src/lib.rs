//! # Siesta — synthesizing proxy applications for MPI programs
//!
//! A Rust reproduction of *"Siesta: Synthesizing Proxy Applications for MPI
//! Programs"* (Yan, Xu, Luo, Sun, Sun — IEEE CLUSTER 2024).
//!
//! Given an MPI program (here: any closure over
//! [`siesta_mpisim::Rank`]), Siesta:
//!
//! 1. **traces** its communication events (every MPI call with normalized
//!    parameters) and computation events (hardware-counter intervals
//!    between calls) through PMPI-style interposition;
//! 2. **merges** per-rank event tables into one global terminal table;
//! 3. **compresses** each rank's event sequence into a run-length Sequitur
//!    grammar and merges the grammars across ranks (identical rules
//!    deduplicate; main rules merge by LCS with per-symbol rank lists);
//! 4. **synthesizes computation proxies** — non-negative integer
//!    combinations of 11 pre-designed code blocks fit to each event's six
//!    counters by a constrained quadratic program;
//! 5. **generates** the proxy-app: C source and a replayable IR whose
//!    execution reproduces the original's communication losslessly and its
//!    computation characteristics approximately, optionally shrunk by a
//!    scaling factor.
//!
//! ## Quick start
//!
//! ```
//! use siesta_core::{Siesta, SiestaConfig};
//! use siesta_mpisim::{Rank, RankFut};
//! use siesta_perfmodel::{KernelDesc, Machine};
//! use siesta_codegen::{emit_c, replay};
//!
//! // Any MPI program: an SPMD rank state machine. Blocking MPI calls are
//! // `.await` suspension points. Here: compute + ring exchange, 5 iterations.
//! let program = |mut rank: Rank| -> RankFut<'static> {
//!     Box::pin(async move {
//!         let comm = rank.comm_world();
//!         let p = rank.nranks();
//!         for _ in 0..5 {
//!             rank.compute(&KernelDesc::stencil(20_000.0, 4.0, 65536.0));
//!             let r = rank.irecv(&comm, (rank.rank() + p - 1) % p, 0, 4096);
//!             let s = rank.isend(&comm, (rank.rank() + 1) % p, 0, 4096);
//!             rank.waitall(&[r, s]).await;
//!             rank.allreduce(&comm, 8).await;
//!         }
//!         rank
//!     })
//! };
//!
//! let machine = Machine::default_eval();
//! let siesta = Siesta::new(SiestaConfig::default());
//! let (synthesis, _traced) = siesta.synthesize_run(machine, 4, program);
//!
//! // The synthetic proxy-app replays the same communication structure...
//! let proxy_stats = replay(&synthesis.program, machine);
//! assert!(proxy_stats.elapsed_ns() > 0.0);
//! // ...and exports as a C program.
//! let c_source = emit_c(&synthesis.program);
//! assert!(c_source.contains("MPI_Allreduce"));
//! ```

pub mod pipeline;
pub mod report;

pub use pipeline::{Siesta, SiestaConfig, Synthesis, SynthesisStats};
pub use report::{
    counter_error_pct, human_bytes, human_ms, per_metric_error_pct, reproduced_time_error_pct,
    time_error_pct,
};

// Re-export the component crates under one roof for downstream users.
pub use siesta_codegen as codegen;
pub use siesta_grammar as grammar;
pub use siesta_mpisim as mpisim;
pub use siesta_perfmodel as perfmodel;
pub use siesta_proxy as proxy;
pub use siesta_trace as trace;
