//! End-to-end pipeline tests: trace → synthesize → replay, on the real
//! workload skeletons.

use siesta_codegen::{emit_c, replay, TerminalOp};
use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::RunStats;
use siesta_perfmodel::{platform_a, platform_b, Machine, MpiFlavor};
use siesta_trace::{CommEvent, EventRecord};
use siesta_workloads::{ProblemSize, Program};

fn machine() -> Machine {
    Machine::new(platform_a(), MpiFlavor::OpenMpi)
}

fn full_run_sized(
    program: Program,
    nprocs: usize,
    size: ProblemSize,
) -> (siesta_core::Synthesis, RunStats, RunStats) {
    let m = machine();
    let original = program.run(m, nprocs, size);
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, traced) = siesta.synthesize_run(m, nprocs, program.body(size));
    (synthesis, original, traced)
}

fn full_run(program: Program, nprocs: usize) -> (siesta_core::Synthesis, RunStats, RunStats) {
    full_run_sized(program, nprocs, ProblemSize::Tiny)
}

#[test]
fn communication_is_reproduced_losslessly() {
    // The headline claim: every rank's proxy-side comm-event sequence is
    // exactly the traced sequence. We verify structurally: expanding the
    // proxy grammar per rank and filtering comm terminals reproduces the
    // global-id comm stream of the trace.
    let m = machine();
    for program in [Program::Bt, Program::Cg, Program::Sedov] {
        let nprocs = if program == Program::Bt { 9 } else { 8 };
        let siesta = Siesta::new(SiestaConfig::default());
        let (trace, _) = siesta.trace_run(m, nprocs, program.body(ProblemSize::Tiny));
        let global = siesta_trace::merge_tables(trace);
        let synthesis = {
            // Re-trace (merge_tables consumed the trace) — determinism
            // makes the second trace identical.
            let (trace2, _) = siesta.trace_run(m, nprocs, program.body(ProblemSize::Tiny));
            siesta.synthesize(trace2, &m)
        };
        for rank in 0..nprocs as u32 {
            let expanded = synthesis.program.expand_for_rank(rank);
            assert_eq!(
                expanded, global.seqs[rank as usize],
                "{} rank {rank}: proxy expansion diverges from trace",
                program.name()
            );
        }
    }
}

#[test]
fn proxy_time_approximates_original() {
    // Figure 6's shape: Siesta's proxy execution time lands near the
    // original program's.
    for (program, nprocs) in [(Program::Bt, 9), (Program::Mg, 8), (Program::Sweep3d, 8)] {
        let (synthesis, original, _) = full_run(program, nprocs);
        let proxy = replay(&synthesis.program, machine());
        let err = proxy.time_error(&original);
        assert!(
            err < 0.20,
            "{}: proxy time error {:.1}% (proxy {:.2}ms vs orig {:.2}ms)",
            program.name(),
            err * 100.0,
            proxy.elapsed_ms(),
            original.elapsed_ms()
        );
    }
}

#[test]
fn proxy_counters_approximate_original() {
    // Table 3's "Error" column: mean relative counter error across metrics
    // and processes stays single-digit percent. Small problem size: at Tiny
    // scale some metrics have two-digit absolute counts, where relative
    // error is measurement-noise-dominated (real D-class events count in
    // the millions).
    for (program, nprocs) in [(Program::Cg, 8), (Program::Sod, 8)] {
        let (synthesis, original, _) = full_run_sized(program, nprocs, ProblemSize::Small);
        let proxy = replay(&synthesis.program, machine());
        let err = proxy.mean_counter_error(&original);
        assert!(
            err < 0.15,
            "{}: counter error {:.2}%",
            program.name(),
            err * 100.0
        );
    }
}

#[test]
fn scaled_proxy_runs_faster_and_reproduces_time() {
    let m = machine();
    let program = Program::Sp;
    let nprocs = 9;
    let original = program.run(m, nprocs, ProblemSize::Tiny);
    let siesta = Siesta::new(SiestaConfig::scaled());
    let (synthesis, _) = siesta.synthesize_run(m, nprocs, program.body(ProblemSize::Tiny));
    let proxy = replay(&synthesis.program, m);
    // The shrunk proxy is much faster than the original...
    assert!(
        proxy.elapsed_ns() < 0.5 * original.elapsed_ns(),
        "scaled proxy {:.2}ms not much faster than original {:.2}ms",
        proxy.elapsed_ms(),
        original.elapsed_ms()
    );
    // ...and multiplying back by the factor reproduces the original time
    // (more loosely than the unscaled proxy — Fig 6 shows the same gap).
    let reproduced = proxy.elapsed_ns() * synthesis.program.scale;
    let err = (reproduced - original.elapsed_ns()).abs() / original.elapsed_ns();
    assert!(err < 0.45, "scaled reproduction error {:.1}%", err * 100.0);
}

#[test]
fn compression_beats_raw_trace_by_orders_of_magnitude() {
    // Small size: enough iterations for the grammar to amortize the fixed
    // costs (block source, tables) — Table 3 ratios are 100–5000×.
    let (synthesis, _, _) = full_run_sized(Program::Sweep3d, 8, ProblemSize::Small);
    let ratio = synthesis.stats.compression_ratio();
    assert!(
        ratio > 50.0,
        "compression ratio only {ratio:.1}× (raw {} vs size_C {})",
        synthesis.stats.raw_trace_bytes,
        synthesis.stats.size_c_bytes
    );
}

#[test]
fn synthesis_is_deterministic() {
    let (a, _, _) = full_run(Program::Is, 8);
    let (b, _, _) = full_run(Program::Is, 8);
    assert_eq!(a.program, b.program);
    assert_eq!(a.stats.size_c_bytes, b.stats.size_c_bytes);
}

#[test]
fn emitted_c_covers_the_programs_mpi_surface() {
    // Small size so Sedov reaches its regrid (comm_split) phase.
    let (synthesis, _, _) = full_run_sized(Program::Sedov, 8, ProblemSize::Small);
    let c = emit_c(&synthesis.program);
    for needle in [
        "MPI_Isend",
        "MPI_Irecv",
        "MPI_Waitall",
        "MPI_Allreduce",
        "MPI_Comm_dup",
        "MPI_Comm_split",
        "MPI_Comm_free",
        "MPI_Gather",
        "BLOCK",
        "int main(int argc, char **argv)",
    ] {
        assert!(c.contains(needle), "generated C lacks {needle}");
    }
    let open = c.matches('{').count();
    assert_eq!(open, c.matches('}').count());
}

#[test]
fn proxy_replay_is_deterministic() {
    let (synthesis, _, _) = full_run(Program::Mg, 8);
    let a = replay(&synthesis.program, machine());
    let b = replay(&synthesis.program, machine());
    assert_eq!(a.elapsed_ns(), b.elapsed_ns());
}

#[test]
fn proxy_ports_to_other_platforms() {
    // Figure 9's mechanism: generate on A, replay on B. The proxy's time
    // must move in the same direction and rough magnitude as the original.
    let program = Program::Cg;
    let nprocs = 8;
    let ma = machine();
    let mb = Machine::new(platform_b(), MpiFlavor::OpenMpi);
    let orig_a = program.run(ma, nprocs, ProblemSize::Tiny);
    let orig_b = program.run(mb, nprocs, ProblemSize::Tiny);
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) = siesta.synthesize_run(ma, nprocs, program.body(ProblemSize::Tiny));
    let proxy_b = replay(&synthesis.program, mb);
    let orig_slowdown = orig_b.elapsed_ns() / orig_a.elapsed_ns();
    assert!(orig_slowdown > 1.3, "expected B slower: {orig_slowdown}");
    let err = proxy_b.time_error(&orig_b);
    assert!(
        err < 0.35,
        "cross-platform proxy error {:.1}% (proxy {:.2}ms vs orig-B {:.2}ms)",
        err * 100.0,
        proxy_b.elapsed_ms(),
        orig_b.elapsed_ms()
    );
}

#[test]
fn proxy_tracks_mpi_implementation_changes() {
    // Figure 7's mechanism: generate under openmpi, replay under all three
    // implementations; lossless comm lets the proxy follow each.
    let program = Program::Mg;
    let nprocs = 8;
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) =
        siesta.synthesize_run(machine(), nprocs, program.body(ProblemSize::Tiny));
    for flavor in MpiFlavor::ALL {
        let m = Machine::new(platform_a(), flavor);
        let orig = program.run(m, nprocs, ProblemSize::Tiny);
        let proxy = replay(&synthesis.program, m);
        let err = proxy.time_error(&orig);
        assert!(
            err < 0.25,
            "{}: error {:.1}%",
            flavor.name(),
            err * 100.0
        );
    }
}

#[test]
fn stats_count_the_right_things() {
    let (synthesis, _, _) = full_run(Program::Is, 8);
    let s = &synthesis.stats;
    assert_eq!(s.num_terminals, s.num_comm_terminals + s.num_compute_terminals);
    assert!(s.num_comm_terminals > 0);
    assert!(s.num_compute_terminals > 0);
    assert_eq!(s.merge_rounds, 3); // log2(8)
    assert!(s.mean_fit_error >= 0.0);
    assert!(s.num_mains >= 1);
    // The program's terminal table must contain the alltoallv events IS is
    // known for.
    let has_alltoallv = synthesis.program.terminals.iter().any(|t| {
        matches!(t, TerminalOp::Comm(CommEvent::Alltoallv { .. }))
    });
    assert!(has_alltoallv);
    // And the trace-side record types match.
    let m = machine();
    let siesta = Siesta::new(SiestaConfig::default());
    let (trace, _) = siesta.trace_run(m, 8, Program::Is.body(ProblemSize::Tiny));
    let any_compute = trace.ranks[0].table.iter().any(|e| matches!(e, EventRecord::Compute(_)));
    assert!(any_compute);
}

#[test]
fn fully_spmd_proxies_retarget_to_new_scales() {
    // Trace a scale-free SPMD ring+collective program at 8 ranks, retarget
    // its proxy to 16, and compare against the original *run at 16* (weak
    // scaling: per-rank work is fixed).
    use siesta_codegen::retarget;
    use siesta_perfmodel::KernelDesc;
    fn ring(mut rank: siesta_mpisim::Rank) -> siesta_mpisim::RankFut<'static> {
        Box::pin(async move {
            let comm = rank.comm_world();
            let p = rank.nranks();
            for _ in 0..25 {
                rank.compute(&KernelDesc::stencil(30_000.0, 5.0, 1e6));
                let right = (rank.rank() + 1) % p;
                let left = (rank.rank() + p - 1) % p;
                rank.sendrecv(&comm, right, 3, 8192, left, 3, 8192).await;
                rank.allreduce(&comm, 16).await;
            }
            rank
        })
    }
    let m = machine();
    let siesta = Siesta::new(SiestaConfig::default());
    let (synthesis, _) = siesta.synthesize_run(m, 8, ring);
    let p16 = retarget(&synthesis.program, 16).expect("ring program is scale-free");
    let original16 = siesta_mpisim::World::new(m, 16).run(ring);
    let proxy16 = replay(&p16, m);
    let err = proxy16.time_error(&original16);
    assert!(
        err < 0.15,
        "retargeted proxy error {:.1}% (proxy {:.2}ms vs orig {:.2}ms)",
        err * 100.0,
        proxy16.elapsed_ms(),
        original16.elapsed_ms()
    );
    // Workload programs with boundary branches are correctly refused.
    let (bt, _) = siesta.synthesize_run(m, 9, Program::Bt.body(ProblemSize::Tiny));
    assert!(retarget(&bt.program, 16).is_err(), "BT is not fully SPMD");
}
