//! Randomized end-to-end pipeline fuzzing.
//!
//! A deterministic generator builds arbitrary-but-valid SPMD programs from a
//! seed (every rank derives the same schedule, so sends and receives always
//! match). Each seed's program goes through the whole pipeline: run, trace,
//! synthesize, replay — checking losslessness and timing fidelity on
//! programs nobody hand-shaped.

use siesta_codegen::replay;
use siesta_core::{Siesta, SiestaConfig};
use siesta_mpisim::{Rank, RankFut};
use siesta_perfmodel::{noise, platform_a, platform_c, KernelDesc, Machine, MpiFlavor};

const NRANKS: usize = 8;

/// The fuzz matrix covers a multi-node machine and the single-node
/// platform C, under two MPI implementations.
fn machines() -> [Machine; 2] {
    [
        Machine::new(platform_a(), MpiFlavor::OpenMpi),
        Machine::new(platform_c(), MpiFlavor::Mpich),
    ]
}

/// One round of the generated program, decoded from the schedule stream.
async fn round(rank: &mut Rank, seed: u64, step: u64) {
    let comm = rank.comm_world();
    let p = rank.nranks();
    let me = rank.rank();
    let r = |k: u64| noise::combine(&[seed, step, k]);
    let kind = r(0) % 8;
    match kind {
        0 => {
            // Ring sendrecv with a schedule-derived size.
            let bytes = 16 + (r(1) % 100_000) as usize;
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let tag = (r(2) % 50) as i32;
            rank.sendrecv(&comm, right, tag, bytes, left, tag, bytes).await;
        }
        1 => {
            // Pairwise exchange at a schedule-derived offset.
            let d = 1 + (r(1) as usize % (p - 1));
            let bytes = 16 + (r(2) % 60_000) as usize;
            let to = (me + d) % p;
            let from = (me + p - d) % p;
            rank.sendrecv(&comm, to, 9, bytes, from, 9, bytes).await;
        }
        2 => {
            // Nonblocking halo with 1–3 offsets.
            let k = 1 + (r(1) as usize % 3.min(p - 1));
            let bytes = 16 + (r(2) % 30_000) as usize;
            let mut reqs = Vec::new();
            for i in 0..k {
                let d = 1 + ((r(3 + i as u64) as usize) % (p - 1));
                reqs.push(rank.irecv(&comm, (me + p - d) % p, 40 + i as i32, bytes));
            }
            for i in 0..k {
                let d = 1 + ((r(3 + i as u64) as usize) % (p - 1));
                reqs.push(rank.isend(&comm, (me + d) % p, 40 + i as i32, bytes));
            }
            rank.waitall(&reqs).await;
        }
        3 => {
            let bytes = 8 + (r(1) % 50_000) as usize;
            match r(2) % 5 {
                0 => rank.allreduce(&comm, bytes).await,
                1 => rank.bcast(&comm, (r(3) as usize) % p, bytes).await,
                2 => rank.reduce(&comm, (r(3) as usize) % p, bytes).await,
                3 => rank.allgather(&comm, bytes / p.max(1) + 1).await,
                _ => rank.alltoall(&comm, bytes / p.max(1) + 1).await,
            }
        }
        4 => {
            rank.barrier(&comm).await;
        }
        5 => {
            // Rooted collectives, including the variable-count variants.
            let root = (r(1) as usize) % p;
            match r(4) % 3 {
                0 => {
                    rank.gather(&comm, root, 64 + (r(2) % 4096) as usize).await;
                    rank.scatter(&comm, root, 64 + (r(3) % 4096) as usize).await;
                }
                1 => {
                    let counts: Vec<usize> =
                        (0..p).map(|i| 16 + ((r(5) as usize + i * 13) % 2048)).collect();
                    rank.gatherv(&comm, root, &counts).await;
                    rank.scatterv(&comm, root, &counts).await;
                }
                _ => {
                    rank.scan(&comm, 8 + (r(2) % 8192) as usize).await;
                    rank.reduce_scatter_block(&comm, 8 + (r(3) % 8192) as usize).await;
                }
            }
        }
        6 => {
            // Communicator split; a collective inside; free.
            let colors = 1 + (r(1) % 3) as i64;
            let color = (me as i64) % colors;
            if let Some(sub) = rank.comm_split(&comm, color, me as i64).await {
                rank.allreduce(&sub, 8 + (r(2) % 1024) as usize).await;
                rank.comm_free(sub);
            }
        }
        _ => {
            // Compute of schedule-derived shape.
            let points = 1_000.0 + (r(1) % 300_000) as f64;
            let flops = 1.0 + (r(2) % 12) as f64;
            let ws = 4096.0 + (r(3) % 4_000_000) as f64;
            rank.compute(&KernelDesc::stencil(points, flops, ws));
        }
    }
}

fn program(seed: u64) -> impl Fn(Rank) -> RankFut<'static> + Send + Sync {
    move |mut rank: Rank| -> RankFut<'static> {
        Box::pin(async move {
            let steps = 10 + noise::combine(&[seed, 0xFEED]) % 30;
            // A compute epilogue ensures every program has computation.
            rank.compute(&KernelDesc::bookkeeping(20_000.0));
            for step in 0..steps {
                round(&mut rank, seed, step).await;
            }
            let comm = rank.comm_world();
            rank.barrier(&comm).await;
            rank
        })
    }
}

#[test]
fn random_programs_run_deterministically() {
    for (mi, m) in machines().into_iter().enumerate() {
        let seed = mi as u64; // one seed per machine keeps runtime bounded
        {
        let a = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
        let b = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
        assert_eq!(a.elapsed_ns(), b.elapsed_ns(), "seed {seed}");
        for (x, y) in a.per_rank.iter().zip(&b.per_rank) {
            assert_eq!(x.counters, y.counters, "seed {seed} rank {}", x.rank);
        }
        }
    }
    // And a deeper sweep on the default machine.
    let m = Machine::default_eval();
    for seed in 0..6u64 {
        let a = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
        let b = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
        assert_eq!(a.elapsed_ns(), b.elapsed_ns(), "seed {seed}");
    }
}

#[test]
fn random_programs_synthesize_losslessly() {
    let m = Machine::default_eval();
    for seed in 0..6u64 {
        let siesta = Siesta::new(SiestaConfig::default());
        let (trace, _) = siesta.trace_run(m, NRANKS, program(seed));
        let global = siesta_trace::merge_tables(trace);
        let (trace2, _) = siesta.trace_run(m, NRANKS, program(seed));
        let synthesis = siesta.synthesize(trace2, &m);
        for rank in 0..NRANKS as u32 {
            assert_eq!(
                synthesis.program.expand_for_rank(rank),
                global.seqs[rank as usize],
                "seed {seed} rank {rank}"
            );
        }
    }
}

#[test]
fn random_programs_replay_with_bounded_time_error_across_machines() {
    for m in machines() {
        for seed in [1u64, 5] {
            let original = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
            let siesta = Siesta::new(SiestaConfig::default());
            let (synthesis, _) = siesta.synthesize_run(m, NRANKS, program(seed));
            let proxy = replay(&synthesis.program, m);
            let err = proxy.time_error(&original);
            assert!(err < 0.25, "machine {} seed {seed}: {:.1}%", m.label(), err * 100.0);
        }
    }
}

#[test]
fn random_programs_replay_with_bounded_time_error() {
    let m = Machine::default_eval();
    for seed in 0..6u64 {
        let original = siesta_mpisim::World::new(m, NRANKS).run(program(seed));
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) = siesta.synthesize_run(m, NRANKS, program(seed));
        let proxy = replay(&synthesis.program, m);
        let err = proxy.time_error(&original);
        assert!(
            err < 0.25,
            "seed {seed}: time error {:.1}% (proxy {:.3}ms vs orig {:.3}ms)",
            err * 100.0,
            proxy.elapsed_ms(),
            original.elapsed_ms()
        );
        // No request leaks anywhere in replay.
        assert!(proxy.per_rank.iter().all(|r| r.finish_ns > 0.0));
    }
}

#[test]
fn random_programs_round_trip_through_wire_format() {
    let m = Machine::default_eval();
    for seed in [3u64, 4] {
        let siesta = Siesta::new(SiestaConfig::default());
        let (synthesis, _) = siesta.synthesize_run(m, NRANKS, program(seed));
        let bytes = siesta_codegen::to_bytes(&synthesis.program);
        let decoded = siesta_codegen::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, synthesis.program);
        // The decoded program replays identically.
        let a = replay(&synthesis.program, m);
        let b = replay(&decoded, m);
        assert_eq!(a.elapsed_ns(), b.elapsed_ns());
    }
}
