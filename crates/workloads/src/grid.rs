//! Process-grid decompositions shared by the workload skeletons.

/// A 2D logical process grid of `rows × cols` ranks, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    pub rows: usize,
    pub cols: usize,
}

impl Grid2d {
    /// Square grid: requires a perfect-square process count.
    pub fn square(nprocs: usize) -> Grid2d {
        let q = (nprocs as f64).sqrt().round() as usize;
        assert_eq!(q * q, nprocs, "{nprocs} is not a perfect square");
        Grid2d { rows: q, cols: q }
    }

    /// Most-square factorization `rows × cols = nprocs` with `rows ≤ cols`.
    pub fn near_square(nprocs: usize) -> Grid2d {
        let mut rows = (nprocs as f64).sqrt().floor() as usize;
        while rows > 1 && !nprocs.is_multiple_of(rows) {
            rows -= 1;
        }
        Grid2d { rows: rows.max(1), cols: nprocs / rows.max(1) }
    }

    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.cols, rank % self.cols)
    }

    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Neighbor in the given direction, or `None` at the boundary.
    pub fn neighbor(&self, rank: usize, dir: Dir) -> Option<usize> {
        let (r, c) = self.coords(rank);
        let (nr, nc) = match dir {
            Dir::North => (r.checked_sub(1)?, c),
            Dir::South => {
                if r + 1 >= self.rows {
                    return None;
                }
                (r + 1, c)
            }
            Dir::West => (r, c.checked_sub(1)?),
            Dir::East => {
                if c + 1 >= self.cols {
                    return None;
                }
                (r, c + 1)
            }
        };
        Some(self.rank_of(nr, nc))
    }

    /// Neighbor with periodic (torus) wrap-around.
    pub fn neighbor_periodic(&self, rank: usize, dir: Dir) -> usize {
        let (r, c) = self.coords(rank);
        let (nr, nc) = match dir {
            Dir::North => ((r + self.rows - 1) % self.rows, c),
            Dir::South => ((r + 1) % self.rows, c),
            Dir::West => (r, (c + self.cols - 1) % self.cols),
            Dir::East => (r, (c + 1) % self.cols),
        };
        self.rank_of(nr, nc)
    }
}

/// 2D grid direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    North,
    South,
    East,
    West,
}

pub const DIRS: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

/// A 3D process grid, dimensions chosen as the most-cubic factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3d {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Grid3d {
    pub fn near_cubic(nprocs: usize) -> Grid3d {
        // Peel off the most-cubic factor for z, then split the rest 2D.
        let mut nz = (nprocs as f64).cbrt().floor() as usize;
        while nz > 1 && !nprocs.is_multiple_of(nz) {
            nz -= 1;
        }
        let nz = nz.max(1);
        let g = Grid2d::near_square(nprocs / nz);
        Grid3d { nx: g.cols, ny: g.rows, nz }
    }

    pub fn size(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let z = rank / (self.nx * self.ny);
        let rem = rank % (self.nx * self.ny);
        (rem % self.nx, rem / self.nx, z)
    }

    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        z * self.nx * self.ny + y * self.nx + x
    }

    /// The six face neighbors with periodic wrap (MG uses a periodic grid).
    pub fn face_neighbors_periodic(&self, rank: usize) -> [usize; 6] {
        let (x, y, z) = self.coords(rank);
        [
            self.rank_of((x + 1) % self.nx, y, z),
            self.rank_of((x + self.nx - 1) % self.nx, y, z),
            self.rank_of(x, (y + 1) % self.ny, z),
            self.rank_of(x, (y + self.ny - 1) % self.ny, z),
            self.rank_of(x, y, (z + 1) % self.nz),
            self.rank_of(x, y, (z + self.nz - 1) % self.nz),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_layout() {
        let g = Grid2d::square(16);
        assert_eq!((g.rows, g.cols), (4, 4));
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(5), (1, 1));
        assert_eq!(g.rank_of(3, 2), 14);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn square_grid_rejects_non_squares() {
        Grid2d::square(12);
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(Grid2d::near_square(12), Grid2d { rows: 3, cols: 4 });
        assert_eq!(Grid2d::near_square(64), Grid2d { rows: 8, cols: 8 });
        assert_eq!(Grid2d::near_square(7), Grid2d { rows: 1, cols: 7 });
        assert_eq!(Grid2d::near_square(128), Grid2d { rows: 8, cols: 16 });
        for p in 1..200 {
            assert_eq!(Grid2d::near_square(p).size(), p);
        }
    }

    #[test]
    fn bounded_neighbors() {
        let g = Grid2d::square(9);
        // Center rank 4 has all four neighbors.
        assert_eq!(g.neighbor(4, Dir::North), Some(1));
        assert_eq!(g.neighbor(4, Dir::South), Some(7));
        assert_eq!(g.neighbor(4, Dir::West), Some(3));
        assert_eq!(g.neighbor(4, Dir::East), Some(5));
        // Corner rank 0 has two.
        assert_eq!(g.neighbor(0, Dir::North), None);
        assert_eq!(g.neighbor(0, Dir::West), None);
        assert_eq!(g.neighbor(0, Dir::South), Some(3));
        assert_eq!(g.neighbor(0, Dir::East), Some(1));
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let g = Grid2d::square(9);
        assert_eq!(g.neighbor_periodic(0, Dir::North), 6);
        assert_eq!(g.neighbor_periodic(0, Dir::West), 2);
        assert_eq!(g.neighbor_periodic(8, Dir::South), 2);
        assert_eq!(g.neighbor_periodic(8, Dir::East), 6);
    }

    #[test]
    fn grid3d_roundtrip() {
        let g = Grid3d::near_cubic(64);
        assert_eq!((g.nx, g.ny, g.nz), (4, 4, 4));
        for r in 0..64 {
            let (x, y, z) = g.coords(r);
            assert_eq!(g.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn grid3d_handles_non_cubes() {
        for p in [2, 6, 12, 24, 128, 512, 529] {
            let g = Grid3d::near_cubic(p);
            assert_eq!(g.size(), p, "p={p} got {:?}", g);
        }
    }

    #[test]
    fn face_neighbors_are_within_range_and_symmetric() {
        let g = Grid3d::near_cubic(24);
        for r in 0..24 {
            for n in g.face_neighbors_periodic(r) {
                assert!(n < 24);
                // Symmetry: r appears among n's neighbors.
                assert!(g.face_neighbors_periodic(n).contains(&r));
            }
        }
    }
}
