//! SWEEP3D skeleton: discrete-ordinates neutron transport wavefronts.
//!
//! SWEEP3D decomposes a 3D Cartesian grid over a 2D process grid and sweeps
//! it from all eight octants. Within one octant, each rank receives inflow
//! faces from its upstream west/north neighbors (direction depending on the
//! octant), computes the k-plane blocks, and forwards outflow faces east/
//! south. The result is a long, extremely regular stream of
//! recv-compute-send triples — the largest traces in the paper's Table 3
//! (619 MB at 64 ranks) and ideal material for run-length grammar rules.

use siesta_mpisim::Rank;
use siesta_perfmodel::KernelDesc;

use crate::grid::Grid2d;
use crate::ProblemSize;

const TAG_EW: i32 = 60;
const TAG_NS: i32 = 61;

pub async fn sweep3d(rank: &mut Rank, size: ProblemSize) {
    let p = rank.nranks();
    let comm = rank.comm_world();
    let grid = Grid2d::near_square(p);
    let me = rank.rank();
    let (row, col) = grid.coords(me);

    // Paper input: 1000×1000×1000. Angles are blocked (mmi), k-planes are
    // blocked (mk) — the block counts set the pipeline depth.
    let n = size.extent(400);
    let iters = size.iters(12);
    let k_blocks = match size {
        ProblemSize::Tiny => 2,
        ProblemSize::Small => 4,
        ProblemSize::Reference => 8,
    };
    let angle_blocks = 2usize;

    let it = n / grid.cols.max(1);
    let jt = n / grid.rows.max(1);
    let kt_per_block = (n / k_blocks).max(1);

    // Inflow/outflow face volumes per pipeline stage.
    let ew_bytes = jt * kt_per_block * angle_blocks * 8 / 4;
    let ns_bytes = it * kt_per_block * angle_blocks * 8 / 4;

    // The per-stage compute: divide-heavy flux solves over the block.
    let cells = (it * jt * kt_per_block) as f64;
    let sweep_kernel = KernelDesc::divide_heavy(cells / 8.0, 1.0, cells * 8.0)
        .then(&KernelDesc::stencil(cells, 30.0, cells * 8.0));

    rank.bcast(&comm, 0, 128).await; // input deck
    rank.barrier(&comm).await;

    for _ in 0..iters {
        for octant in 0..8u32 {
            // Octant sweep directions.
            let east_going = octant & 1 == 0;
            let south_going = octant & 2 == 0;
            for _ in 0..angle_blocks {
                for _ in 0..k_blocks {
                    // Upstream inflow.
                    let west_src = if east_going { col.checked_sub(1) } else {
                        if col + 1 < grid.cols { Some(col + 1) } else { None }
                    };
                    let north_src = if south_going { row.checked_sub(1) } else {
                        if row + 1 < grid.rows { Some(row + 1) } else { None }
                    };
                    if let Some(c) = west_src {
                        rank.recv(&comm, grid.rank_of(row, c), TAG_EW, ew_bytes).await;
                    }
                    if let Some(r) = north_src {
                        rank.recv(&comm, grid.rank_of(r, col), TAG_NS, ns_bytes).await;
                    }
                    rank.compute(&sweep_kernel);
                    // Downstream outflow.
                    let east_dst = if east_going {
                        if col + 1 < grid.cols { Some(col + 1) } else { None }
                    } else {
                        col.checked_sub(1)
                    };
                    let south_dst = if south_going {
                        if row + 1 < grid.rows { Some(row + 1) } else { None }
                    } else {
                        row.checked_sub(1)
                    };
                    if let Some(c) = east_dst {
                        rank.send(&comm, grid.rank_of(row, c), TAG_EW, ew_bytes).await;
                    }
                    if let Some(r) = south_dst {
                        rank.send(&comm, grid.rank_of(r, col), TAG_NS, ns_bytes).await;
                    }
                }
            }
        }
        // Flux convergence check.
        rank.allreduce(&comm, 8).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn sweep3d_runs_on_various_counts() {
        for p in [2, 4, 6, 9, 16] {
            let stats = Program::Sweep3d.run(machine(), p, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0, "p={p}");
        }
    }

    #[test]
    fn sweep3d_has_the_biggest_traces() {
        // Paper: SWEEP3D 619 MB > SP 508 MB > BT 290 MB at 64 ranks.
        let m = machine();
        let sw = Program::Sweep3d.run(m, 16, ProblemSize::Small).total_calls();
        let sp = Program::Sp.run(m, 16, ProblemSize::Small).total_calls();
        assert!(sw > sp, "Sweep3d {sw} <= SP {sp}");
    }

    #[test]
    fn wavefront_pipelines_delay_downstream_ranks() {
        // In a single octant sweep, the far corner cannot start before the
        // near corner has progressed: finish times must be strictly ordered
        // along the diagonal for one iteration... the full 8 octants
        // symmetrize totals, so check that the run simply synchronizes to
        // within one pipeline depth.
        let stats = Program::Sweep3d.run(machine(), 4, ProblemSize::Tiny);
        let max = stats.elapsed_ns();
        for r in &stats.per_rank {
            assert!(r.finish_ns > max * 0.5);
        }
    }
}
