//! NPB BT and SP skeletons.
//!
//! Both are ADI (alternating-direction implicit) pseudo-applications on a
//! square process grid: each time step exchanges cell faces with the four
//! grid neighbors (`copy_faces`), then performs pipelined line solves in the
//! x and y directions (hyperplane sweeps along grid rows/columns with
//! boundary sends between stages), a local z solve, and a local update. BT
//! solves 5×5 block tridiagonal systems (big messages, multiply-heavy
//! kernels); SP solves scalar pentadiagonal systems (smaller messages, more
//! iterations, divide-heavier kernels).
//!
//! The fixed rank offsets of the neighbor exchanges are what the paper's
//! relative-rank encoding normalizes across processes.

use siesta_mpisim::Rank;
use siesta_perfmodel::KernelDesc;

use crate::grid::{Dir, Grid2d};
use crate::ProblemSize;

/// Tags, mirroring NPB's direction-specific message tags.
const TAG_FACE: i32 = 10;
const TAG_XSWEEP: i32 = 20;
const TAG_XBACK: i32 = 21;
const TAG_YSWEEP: i32 = 30;
const TAG_YBACK: i32 = 31;

struct AdiConfig {
    /// Grid extent (cube side) of the global problem.
    n: usize,
    iters: usize,
    /// Doubles per face cell exchanged in `copy_faces`.
    face_words: usize,
    /// Doubles per boundary cell sent between sweep stages.
    sweep_words: usize,
    /// Flops per cell in the RHS computation.
    rhs_flops: f64,
    /// Divides per cell in one line solve.
    solve_divs: f64,
    /// Flops per cell in one line solve.
    solve_flops: f64,
}

/// BT: block-tridiagonal. Paper runs class D (408³, 250 iterations); the
/// reference skeleton scales this down while keeping the structure.
pub async fn bt(rank: &mut Rank, size: ProblemSize) {
    let cfg = AdiConfig {
        n: size.extent(144),
        iters: size.iters(40),
        face_words: 25, // 5×5 block faces
        sweep_words: 30,
        rhs_flops: 80.0,
        solve_divs: 1.0,
        solve_flops: 120.0,
    };
    adi(rank, &cfg).await;
}

/// SP: scalar-pentadiagonal. More, cheaper iterations and smaller messages
/// than BT — which is why SP's Table 3 traces are the largest of the NPB set.
pub async fn sp(rank: &mut Rank, size: ProblemSize) {
    let cfg = AdiConfig {
        n: size.extent(144),
        iters: size.iters(60),
        face_words: 5,
        sweep_words: 10,
        rhs_flops: 50.0,
        solve_divs: 3.0,
        solve_flops: 40.0,
    };
    adi(rank, &cfg).await;
}

async fn adi(rank: &mut Rank, cfg: &AdiConfig) {
    let comm = rank.comm_world();
    let p = rank.nranks();
    let grid = Grid2d::square(p);
    let me = rank.rank();
    let (row, col) = grid.coords(me);

    // Per-rank subdomain: n/q × n/q columns of the full z extent.
    let q = grid.cols;
    let sub = (cfg.n / q).max(4);
    let cells = (sub * sub * cfg.n) as f64;
    let face_bytes = sub * cfg.n * cfg.face_words * 8 / 4;
    let sweep_bytes = sub * cfg.n * cfg.sweep_words * 8 / 8;
    let state_bytes = cells * 40.0;

    let rhs_kernel = KernelDesc::stencil(cells, cfg.rhs_flops, state_bytes);
    let solve_kernel = KernelDesc::divide_heavy(cells / q as f64, cfg.solve_divs, state_bytes / q as f64)
        .then(&KernelDesc::stencil(cells / q as f64, cfg.solve_flops, state_bytes / q as f64));
    let add_kernel = KernelDesc::stencil(cells, 10.0, state_bytes);

    // Initialization: the root distributes problem parameters.
    rank.bcast(&comm, 0, 64).await;
    rank.bcast(&comm, 0, 24).await;
    rank.compute(&KernelDesc::stencil(cells, 20.0, state_bytes)); // initialize_field
    rank.barrier(&comm).await;

    for _step in 0..cfg.iters {
        // ---- copy_faces: exchange with the four periodic neighbors.
        let mut reqs = Vec::with_capacity(8);
        for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
            let nb = grid.neighbor_periodic(me, dir);
            reqs.push(rank.irecv(&comm, nb, TAG_FACE, face_bytes));
        }
        rank.compute(&KernelDesc::bookkeeping(2_000.0)); // pack buffers
        for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
            let nb = grid.neighbor_periodic(me, dir);
            reqs.push(rank.isend(&comm, nb, TAG_FACE, face_bytes));
        }
        rank.waitall(&reqs).await;
        rank.compute(&rhs_kernel); // compute_rhs

        // ---- x_solve: pipelined sweep along the row (west→east, then back).
        if let Some(west) = grid.neighbor(me, Dir::West) {
            rank.recv(&comm, west, TAG_XSWEEP, sweep_bytes).await;
        }
        rank.compute(&solve_kernel);
        if let Some(east) = grid.neighbor(me, Dir::East) {
            rank.send(&comm, east, TAG_XSWEEP, sweep_bytes).await;
        }
        // Back-substitution east→west.
        if let Some(east) = grid.neighbor(me, Dir::East) {
            rank.recv(&comm, east, TAG_XBACK, sweep_bytes).await;
        }
        rank.compute(&solve_kernel);
        if let Some(west) = grid.neighbor(me, Dir::West) {
            rank.send(&comm, west, TAG_XBACK, sweep_bytes).await;
        }

        // ---- y_solve: same along the column (north→south and back).
        if let Some(north) = grid.neighbor(me, Dir::North) {
            rank.recv(&comm, north, TAG_YSWEEP, sweep_bytes).await;
        }
        rank.compute(&solve_kernel);
        if let Some(south) = grid.neighbor(me, Dir::South) {
            rank.send(&comm, south, TAG_YSWEEP, sweep_bytes).await;
        }
        if let Some(south) = grid.neighbor(me, Dir::South) {
            rank.recv(&comm, south, TAG_YBACK, sweep_bytes).await;
        }
        rank.compute(&solve_kernel);
        if let Some(north) = grid.neighbor(me, Dir::North) {
            rank.send(&comm, north, TAG_YBACK, sweep_bytes).await;
        }

        // ---- z_solve: z is not partitioned, purely local.
        rank.compute(&solve_kernel);
        // ---- add: apply the update.
        rank.compute(&add_kernel);
        let _ = (row, col);
    }

    // Verification: residual norms.
    rank.allreduce(&comm, 40).await;
    rank.allreduce(&comm, 40).await;
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn bt_runs_on_square_grids() {
        for p in [4, 9, 16] {
            let stats = Program::Bt.run(machine(), p, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0);
        }
    }

    #[test]
    fn sp_makes_more_calls_than_bt() {
        // SP iterates more with the same pattern → bigger trace (paper
        // Table 3: SP 508 MB vs BT 290 MB at 64 ranks).
        let bt = Program::Bt.run(machine(), 9, ProblemSize::Small).total_calls();
        let sp = Program::Sp.run(machine(), 9, ProblemSize::Small).total_calls();
        assert!(sp > bt, "SP {sp} <= BT {bt}");
    }

    #[test]
    fn bt_moves_more_bytes_per_call_than_sp() {
        let m = machine();
        let bt = Program::Bt.run(m, 9, ProblemSize::Tiny);
        let sp = Program::Sp.run(m, 9, ProblemSize::Tiny);
        let bt_per_call = bt.total_bytes() as f64 / bt.total_calls() as f64;
        let sp_per_call = sp.total_bytes() as f64 / sp.total_calls() as f64;
        assert!(bt_per_call > sp_per_call);
    }

    #[test]
    fn interior_and_boundary_ranks_differ_in_calls() {
        // On a 3×3 grid, the center rank participates in all four sweep
        // directions; corners skip some — the SPMD-with-branches structure
        // the LCS main-rule merge handles.
        let stats = Program::Bt.run(machine(), 9, ProblemSize::Tiny);
        let corner = stats.per_rank[0].app_calls;
        let center = stats.per_rank[4].app_calls;
        assert!(center > corner);
    }
}
