//! Skeleton MPI workloads for the Siesta evaluation.
//!
//! The paper evaluates nine programs: five NAS Parallel Benchmarks (BT, CG,
//! MG, SP, IS), the SWEEP3D neutron-transport kernel, and three FLASH
//! scientific-simulation problems (Sedov, Sod, StirTurb). Siesta never looks
//! at their source — it only sees the PMPI trace — so what matters for the
//! reproduction is that each skeleton:
//!
//! * issues the **same communication structure** as the original (process
//!   grids, neighbor exchanges with fixed rank offsets, pipelined sweeps,
//!   collectives in the same places, SPMD main loops), because that is what
//!   the grammar extraction compresses;
//! * interleaves **distinctive computation kernels** between MPI calls,
//!   because that is what the counter-based proxy search approximates; and
//! * keeps the papers' *relative* trace-size ordering (SWEEP3D and SP trace
//!   big, IS traces tiny, FLASH-Sod is small).
//!
//! Every body is an SPMD `async fn`, the same on every rank, branching on
//! `rank.rank()` internally exactly like an MPI `main()`. Blocking MPI
//! calls are `.await` points: the simulator suspends the rank's state
//! machine there and resumes it when the matching event completes, which
//! is what lets one host thread drive thousands of virtual ranks.

pub mod cg;
pub mod flash;
pub mod grid;
pub mod halo;
pub mod is;
pub mod lu;
pub mod mg;
pub mod npb_adi;
pub mod sweep3d;

use std::sync::Arc;

use siesta_mpisim::{PmpiHook, Rank, RankFut, RunStats, World};
use siesta_perfmodel::Machine;

/// How large a run to configure. Experiments use `Reference`; tests use
/// `Tiny` so the whole suite stays fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSize {
    /// A few iterations on a shrunken grid — unit/integration tests.
    Tiny,
    /// Mid-size — quick benchmarks.
    Small,
    /// The scaled-down stand-in for the paper's D-class runs.
    Reference,
}

impl ProblemSize {
    /// Scale an iteration count.
    pub fn iters(self, base: usize) -> usize {
        match self {
            ProblemSize::Tiny => (base / 10).max(2),
            ProblemSize::Small => (base / 4).max(3),
            ProblemSize::Reference => base,
        }
    }

    /// Scale a grid extent.
    pub fn extent(self, base: usize) -> usize {
        match self {
            ProblemSize::Tiny => (base / 4).max(8),
            ProblemSize::Small => (base / 2).max(16),
            ProblemSize::Reference => base,
        }
    }
}

/// One of the paper's nine evaluation programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Program {
    Bt,
    Cg,
    Is,
    Mg,
    Sp,
    Sweep3d,
    StirTurb,
    Sod,
    Sedov,
    /// NPB LU — not part of the paper's evaluation; included as an
    /// out-of-sample workload (see [`Program::EXTRA`]).
    Lu,
}

impl Program {
    /// The paper's nine evaluation programs, in Table 3 order. The
    /// experiment harnesses sweep exactly this set.
    pub const ALL: [Program; 9] = [
        Program::Bt,
        Program::Cg,
        Program::Is,
        Program::Mg,
        Program::Sp,
        Program::Sweep3d,
        Program::StirTurb,
        Program::Sod,
        Program::Sedov,
    ];

    /// Additional workloads beyond the paper's set (out-of-sample checks).
    pub const EXTRA: [Program; 1] = [Program::Lu];

    pub fn name(self) -> &'static str {
        match self {
            Program::Bt => "BT",
            Program::Cg => "CG",
            Program::Is => "IS",
            Program::Mg => "MG",
            Program::Sp => "SP",
            Program::Sweep3d => "Sweep3d",
            Program::StirTurb => "StirTurb",
            Program::Sod => "Sod",
            Program::Sedov => "Sedov",
            Program::Lu => "LU",
        }
    }

    /// Parse a name as printed by [`Program::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<Program> {
        Program::ALL
            .iter()
            .chain(Program::EXTRA.iter())
            .copied()
            .find(|p| p.name().eq_ignore_ascii_case(s))
    }

    /// Whether the program can run on `nprocs` ranks.
    pub fn valid_nprocs(self, nprocs: usize) -> bool {
        match self {
            // BT and SP require square process grids.
            Program::Bt | Program::Sp => {
                let q = (nprocs as f64).sqrt().round() as usize;
                q * q == nprocs && nprocs >= 4
            }
            // The NPB power-of-two programs.
            Program::Cg | Program::Mg | Program::Is => nprocs.is_power_of_two() && nprocs >= 2,
            // LU runs on any factorizable grid ≥ 4.
            Program::Lu => nprocs >= 4,
            // SWEEP3D and FLASH take any factorizable count ≥ 2.
            _ => nprocs >= 2,
        }
    }

    /// The process counts the paper's Table 3 evaluates for this program.
    pub fn paper_nprocs(self) -> [usize; 4] {
        match self {
            Program::Bt | Program::Sp => [64, 121, 256, 529],
            _ => [64, 128, 256, 512],
        }
    }

    /// FLASH programs perform communicator management (`MPI_Comm_dup`,
    /// `MPI_Comm_split`), which the ScalaBench-like baseline cannot replay.
    pub fn uses_comm_management(self) -> bool {
        matches!(self, Program::StirTurb | Program::Sod | Program::Sedov)
    }

    /// The SPMD body of the program, as a factory of rank state machines:
    /// called once per rank with that rank's [`Rank`] handle, it returns
    /// the boxed resumable future the scheduler drives to completion.
    pub fn body(self, size: ProblemSize) -> Box<dyn Fn(Rank) -> RankFut<'static> + Send + Sync> {
        macro_rules! spmd {
            ($path:path) => {
                Box::new(move |mut r: Rank| -> RankFut<'static> {
                    Box::pin(async move {
                        $path(&mut r, size).await;
                        r
                    })
                })
            };
        }
        match self {
            Program::Bt => spmd!(npb_adi::bt),
            Program::Sp => spmd!(npb_adi::sp),
            Program::Cg => spmd!(cg::cg),
            Program::Mg => spmd!(mg::mg),
            Program::Is => spmd!(is::is),
            Program::Sweep3d => spmd!(sweep3d::sweep3d),
            Program::StirTurb => spmd!(flash::stir_turb),
            Program::Sod => spmd!(flash::sod),
            Program::Sedov => spmd!(flash::sedov),
            Program::Lu => spmd!(lu::lu),
        }
    }

    /// Run un-instrumented.
    pub fn run(self, machine: Machine, nprocs: usize, size: ProblemSize) -> RunStats {
        assert!(self.valid_nprocs(nprocs), "{} cannot run on {nprocs} ranks", self.name());
        World::new(machine, nprocs).run(self.body(size))
    }

    /// Run with a PMPI interposer installed (the traced run).
    pub fn run_hooked(
        self,
        machine: Machine,
        nprocs: usize,
        size: ProblemSize,
        hook: Arc<dyn PmpiHook>,
    ) -> RunStats {
        assert!(self.valid_nprocs(nprocs), "{} cannot run on {nprocs} ranks", self.name());
        World::new(machine, nprocs)
            .with_hook(hook)
            .run(self.body(size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_perfmodel::{platform_a, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn names_parse_round_trip() {
        for p in Program::ALL {
            assert_eq!(Program::parse(p.name()), Some(p));
            assert_eq!(Program::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Program::parse("LU"), Some(Program::Lu));
        assert_eq!(Program::parse("FT"), None);
    }

    #[test]
    fn valid_nprocs_rules() {
        assert!(Program::Bt.valid_nprocs(64));
        assert!(Program::Bt.valid_nprocs(121));
        assert!(!Program::Bt.valid_nprocs(128));
        assert!(Program::Cg.valid_nprocs(128));
        assert!(!Program::Cg.valid_nprocs(121));
        assert!(Program::Sweep3d.valid_nprocs(12));
        assert!(Program::Sod.valid_nprocs(6));
    }

    #[test]
    fn paper_nprocs_are_valid() {
        for p in Program::ALL {
            for n in p.paper_nprocs() {
                assert!(p.valid_nprocs(n), "{} invalid at {n}", p.name());
            }
        }
    }

    #[test]
    fn every_program_runs_tiny() {
        for p in Program::ALL {
            let n = match p {
                Program::Bt | Program::Sp => 9,
                _ => 8,
            };
            let stats = p.run(machine(), n, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0, "{} produced zero time", p.name());
            assert!(stats.total_calls() > 0, "{} made no MPI calls", p.name());
            // Every rank both computed and communicated.
            for r in &stats.per_rank {
                assert!(r.compute_events > 0, "{} rank {} never computed", p.name(), r.rank);
                assert!(r.app_calls > 0, "{} rank {} made no calls", p.name(), r.rank);
            }
        }
    }

    #[test]
    fn runs_are_deterministic_per_program() {
        for p in [Program::Bt, Program::Cg, Program::Sedov] {
            let n = if p == Program::Bt { 9 } else { 8 };
            let a = p.run(machine(), n, ProblemSize::Tiny);
            let b = p.run(machine(), n, ProblemSize::Tiny);
            assert_eq!(a.elapsed_ns(), b.elapsed_ns(), "{} nondeterministic", p.name());
        }
    }

    #[test]
    fn spmd_programs_make_symmetric_call_counts() {
        // Interior symmetry: in BT on a 3×3 grid the center rank makes the
        // most calls; all ranks make a comparable number.
        let stats = Program::Bt.run(machine(), 9, ProblemSize::Tiny);
        let min = stats.per_rank.iter().map(|r| r.app_calls).min().unwrap();
        let max = stats.per_rank.iter().map(|r| r.app_calls).max().unwrap();
        assert!(max < 2 * min, "call counts wildly asymmetric: {min}..{max}");
    }

    #[test]
    fn trace_volume_ordering_matches_paper() {
        // IS must trace far fewer events than the dense solvers (paper:
        // 32 KB vs hundreds of MB).
        let m = machine();
        let is = Program::Is.run(m, 8, ProblemSize::Small).total_calls();
        let sweep = Program::Sweep3d.run(m, 8, ProblemSize::Small).total_calls();
        let sod = Program::Sod.run(m, 8, ProblemSize::Small).total_calls();
        assert!(is * 2 < sod, "IS {is} not well below Sod {sod}");
        assert!(sod < sweep, "Sod {sod} not below Sweep3d {sweep}");
    }

    #[test]
    fn flash_programs_use_comm_management() {
        assert!(Program::Sedov.uses_comm_management());
        assert!(!Program::Bt.uses_comm_management());
    }
}
