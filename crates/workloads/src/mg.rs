//! NPB MG skeleton: multigrid V-cycles on a 3D periodic grid.
//!
//! Each V-cycle descends the grid hierarchy (restriction) and climbs back
//! (prolongation); at every level each rank exchanges halo faces with its
//! six periodic neighbors, with face sizes shrinking 4× per level and
//! compute shrinking 8×. A residual-norm `MPI_Allreduce` closes each
//! iteration. The per-level repetition with geometrically changing sizes
//! exercises the grammar's nesting extraction.

use siesta_mpisim::{Communicator, Rank};
use siesta_perfmodel::KernelDesc;

use crate::grid::Grid3d;
use crate::ProblemSize;

const TAG_HALO: i32 = 50;

pub async fn mg(rank: &mut Rank, size: ProblemSize) {
    let p = rank.nranks();
    assert!(p.is_power_of_two(), "MG needs a power-of-two process count");
    let comm = rank.comm_world();
    let grid = Grid3d::near_cubic(p);
    let me = rank.rank();
    let neighbors = grid.face_neighbors_periodic(me);

    let n = size.extent(256);
    let iters = size.iters(16);
    let levels = match size {
        ProblemSize::Tiny => 3,
        ProblemSize::Small => 4,
        ProblemSize::Reference => 5,
    };

    // Per-rank extent at the finest level.
    let sub = (n / (p as f64).cbrt().round() as usize).max(8);

    let face_bytes_at = |level: usize| {
        let s = (sub >> level).max(2);
        s * s * 8
    };
    let kernel_at = |level: usize, flops: f64| {
        let s = (sub >> level).max(2) as f64;
        KernelDesc::stencil(s * s * s, flops, s * s * s * 8.0)
    };

    // Three axes; each axis sends both directions (NPB's give3/take3).
    async fn exchange(
        rank: &mut Rank,
        comm: &Communicator,
        neighbors: &[usize; 6],
        me: usize,
        bytes: usize,
    ) {
        for axis in 0..3 {
            let plus = neighbors[axis * 2];
            let minus = neighbors[axis * 2 + 1];
            if plus == me {
                continue; // periodic self-neighbor on a flat axis
            }
            rank.sendrecv(comm, plus, TAG_HALO, bytes, minus, TAG_HALO, bytes).await;
            rank.sendrecv(comm, minus, TAG_HALO, bytes, plus, TAG_HALO, bytes).await;
        }
    }

    // Setup: zero the hierarchy, seed the right-hand side.
    rank.compute(&kernel_at(0, 8.0));
    rank.allreduce(&comm, 16).await; // initial norm
    rank.barrier(&comm).await;

    for _ in 0..iters {
        // Downward leg: smooth + restrict at each level.
        for level in 0..levels {
            exchange(rank, &comm, &neighbors, me, face_bytes_at(level)).await;
            rank.compute(&kernel_at(level, 25.0)); // resid + rprj3
        }
        // Coarsest solve.
        rank.compute(&kernel_at(levels, 40.0));
        // Upward leg: prolongate + smooth.
        for level in (0..levels).rev() {
            exchange(rank, &comm, &neighbors, me, face_bytes_at(level)).await;
            rank.compute(&kernel_at(level, 30.0)); // interp + psinv
        }
        // Convergence norm.
        rank.allreduce(&comm, 16).await;
    }

    // Final verification norm.
    rank.allreduce(&comm, 16).await;
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn mg_runs_on_powers_of_two() {
        for p in [2, 8, 16] {
            let stats = Program::Mg.run(machine(), p, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0, "p={p}");
        }
    }

    #[test]
    fn mg_traces_less_than_sp() {
        // Paper Table 3: MG 168 MB vs SP 508 MB at 64 ranks.
        let m = machine();
        let mg = Program::Mg.run(m, 16, ProblemSize::Small).total_calls();
        let sp = Program::Sp.run(m, 16, ProblemSize::Small).total_calls();
        assert!(mg < sp, "MG {mg} >= SP {sp}");
    }

    #[test]
    fn mg_symmetric_across_ranks() {
        let stats = Program::Mg.run(machine(), 8, ProblemSize::Tiny);
        let c0 = stats.per_rank[0].app_calls;
        assert!(stats.per_rank.iter().all(|r| r.app_calls == c0));
    }
}
