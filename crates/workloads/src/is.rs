//! NPB IS skeleton: parallel bucket sort of integer keys.
//!
//! IS is the odd one out in Table 3: it makes very few MPI calls (its 64-rank
//! trace is 32 KB where BT's is 290 MB), but they are collectives moving a
//! lot of data (`MPI_Alltoallv` of the keys). Each of the ~10 rankings does:
//! local key counting (an integer, branchy, cache-hostile kernel), an
//! `MPI_Allreduce` over the bucket histogram, an `MPI_Alltoall` of send
//! counts, and an `MPI_Alltoallv` redistributing the keys.

use siesta_mpisim::Rank;
use siesta_perfmodel::{noise, KernelDesc};

use crate::ProblemSize;

pub async fn is(rank: &mut Rank, size: ProblemSize) {
    let p = rank.nranks();
    assert!(p.is_power_of_two(), "IS needs a power-of-two process count");
    let comm = rank.comm_world();
    let me = rank.rank();

    let total_keys = size.extent(1 << 23);
    let iters = size.iters(10).min(10);
    let keys_per_rank = total_keys / p;
    let buckets = 1024usize;

    let count_kernel = KernelDesc::integer_scatter(keys_per_rank as f64, (buckets * 4) as f64);
    let rank_kernel = KernelDesc::integer_scatter(
        keys_per_rank as f64 * 1.5,
        (keys_per_rank * 4) as f64,
    );

    // Key generation.
    rank.compute(&KernelDesc {
        int_alu: keys_per_rank as f64 * 4.0,
        branches: keys_per_rank as f64 * 0.5,
        mispredict_rate: 0.02,
        loads: keys_per_rank as f64 * 0.5,
        stores: keys_per_rank as f64,
        working_set: (keys_per_rank * 4) as f64,
        stride: 8.0,
        ..KernelDesc::ZERO
    });
    rank.barrier(&comm).await;

    // IS generates uniformly distributed keys, so each rank's share per
    // peer is stable across iterations (a mild per-pair skew stands in for
    // bucket-boundary effects). Stable counts are what keep the paper's IS
    // traces tiny: every iteration's alltoallv is the *same* event.
    let send_counts: Vec<usize> = (0..p)
        .map(|peer| {
            let base = keys_per_rank * 4 / p; // bytes
            let jitter = noise::unit(noise::combine(&[me as u64, peer as u64]));
            (base as f64 * (0.9 + 0.2 * jitter)) as usize
        })
        .collect();
    let recv_counts: Vec<usize> = (0..p)
        .map(|peer| {
            let base = keys_per_rank * 4 / p;
            let jitter = noise::unit(noise::combine(&[peer as u64, me as u64]));
            (base as f64 * (0.9 + 0.2 * jitter)) as usize
        })
        .collect();

    for _iter in 0..iters {
        rank.compute(&count_kernel);
        // Global bucket histogram.
        rank.allreduce(&comm, buckets * 4).await;
        rank.compute(&KernelDesc::bookkeeping(buckets as f64 * 4.0));
        // Global key offsets (prefix sums), then the per-peer counts and
        // the keys themselves.
        rank.scan(&comm, 8).await;
        rank.alltoall(&comm, 4 * p / p.max(1)).await;
        rank.alltoallv(&comm, &send_counts, &recv_counts).await;
        rank.compute(&rank_kernel);
    }

    // Full verification sort + global check.
    rank.compute(&rank_kernel.repeat(2.0));
    rank.allreduce(&comm, 8).await;
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn is_runs_and_makes_few_calls() {
        let stats = Program::Is.run(machine(), 8, ProblemSize::Reference);
        // ~5 calls per iteration × 10 iterations + setup: well under 100.
        assert!(stats.per_rank[0].app_calls < 100);
        assert!(stats.per_rank[0].app_calls > 20);
    }

    #[test]
    fn is_moves_many_bytes_despite_few_calls() {
        let stats = Program::Is.run(machine(), 8, ProblemSize::Small);
        let per_call = stats.total_bytes() as f64 / stats.total_calls() as f64;
        assert!(per_call > 10_000.0, "IS bytes/call only {per_call}");
    }

    #[test]
    fn is_alltoallv_counts_are_transposes() {
        // The jitter matrices must agree: what rank a sends to b equals
        // what b expects from a. A mismatch would deadlock the alltoallv,
        // so simply completing is the real assertion; run at 16 ranks.
        let stats = Program::Is.run(machine(), 16, ProblemSize::Tiny);
        assert!(stats.elapsed_ns() > 0.0);
    }
}
