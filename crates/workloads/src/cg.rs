//! NPB CG skeleton: conjugate gradient with an irregular sparse matrix.
//!
//! CG partitions the matrix on a `nprows × npcols` grid (powers of two).
//! Each inner CG iteration does a sparse matrix-vector product (an
//! irregular, cache-unfriendly kernel), a row-group butterfly reduction of
//! the partial products via explicit send/recv pairs, a transpose exchange
//! with the symmetric partner, and two scalar `MPI_Allreduce`s for the dot
//! products. This mix of point-to-point butterflies and tiny collectives is
//! what makes CG traces large (paper: 491 MB at 64 ranks).

use siesta_mpisim::Rank;
use siesta_perfmodel::{KernelDesc, TILE_BYTES};

use crate::ProblemSize;

const TAG_REDUCE: i32 = 40;
const TAG_TRANSPOSE: i32 = 41;

pub async fn cg(rank: &mut Rank, size: ProblemSize) {
    let p = rank.nranks();
    assert!(p.is_power_of_two(), "CG needs a power-of-two process count");
    let comm = rank.comm_world();
    let me = rank.rank();

    // NPB layout: npcols = 2^ceil(log2(p)/2), nprows = p / npcols.
    let log2p = p.trailing_zeros() as usize;
    let npcols = 1usize << log2p.div_ceil(2);
    let nprows = p / npcols;
    let my_row = me / npcols;
    let my_col = me % npcols;

    let na = size.extent(75_000);
    let outer = size.iters(15);
    let inner = 25usize;
    let rows_per_rank = na / nprows;
    let vec_bytes = rows_per_rank * 8;
    let nnz_per_row = 11.0;

    // Sparse matvec: irregular gathers through the column indices.
    let matvec = KernelDesc {
        int_alu: rows_per_rank as f64 * nnz_per_row * 2.0,
        fp_add: rows_per_rank as f64 * nnz_per_row * 2.0,
        fp_div: 0.0,
        loads: rows_per_rank as f64 * nnz_per_row * 2.0,
        stores: rows_per_rank as f64,
        branches: rows_per_rank as f64,
        mispredict_rate: 0.05,
        working_set: (rows_per_rank as f64 * nnz_per_row * 12.0).min(TILE_BYTES),
        stride: 32.0,
    };
    let axpy = KernelDesc::stencil(rows_per_rank as f64 * 2.0, 2.0, vec_bytes as f64 * 2.0);

    // Initialization: makea (matrix generation) is compute-heavy, then sync.
    rank.compute(&matvec.repeat(3.0));
    rank.barrier(&comm).await;

    // The rank this process exchanges transposed vectors with.
    // Standard NPB: exch_proc = (me % npcols) * nprows + me / npcols when
    // the grid is square (diagonal ranks self-partner and copy locally);
    // otherwise fall back to a column-symmetric partner.
    let transpose_partner = {
        if nprows == npcols {
            my_col * nprows + my_row
        } else {
            (me + p / 2) % p
        }
    };

    for _ in 0..outer {
        for _ in 0..inner {
            rank.compute(&matvec);
            // Butterfly sum across the row group.
            let mut stride = npcols / 2;
            while stride >= 1 {
                let partner_col = my_col ^ stride;
                let partner = my_row * npcols + partner_col;
                rank.sendrecv(
                    &comm,
                    partner,
                    TAG_REDUCE,
                    vec_bytes,
                    partner,
                    TAG_REDUCE,
                    vec_bytes,
                )
                .await;
                rank.compute(&axpy);
                if stride == 1 {
                    break;
                }
                stride /= 2;
            }
            // Transpose exchange (skip when self-partnered on 1×p grids).
            if transpose_partner != me {
                rank.sendrecv(
                    &comm,
                    transpose_partner,
                    TAG_TRANSPOSE,
                    vec_bytes,
                    transpose_partner,
                    TAG_TRANSPOSE,
                    vec_bytes,
                )
                .await;
            }
            rank.compute(&axpy);
            // Dot products.
            rank.allreduce(&comm, 8).await;
        }
        // Residual norm at the end of each outer iteration.
        rank.compute(&axpy);
        rank.allreduce(&comm, 8).await;
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn cg_runs_on_powers_of_two() {
        for p in [2, 4, 8, 16] {
            let stats = Program::Cg.run(machine(), p, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0, "p={p}");
        }
    }

    #[test]
    fn cg_is_dominated_by_many_small_collectives_and_exchanges() {
        let stats = Program::Cg.run(machine(), 8, ProblemSize::Tiny);
        // Inner loop: ~4 calls per iteration, 25 inner × 2 outer minimum.
        assert!(stats.per_rank[0].app_calls > 100);
    }

    #[test]
    fn cg_call_counts_split_diagonal_vs_off_diagonal() {
        // On a square 4×4 grid the diagonal ranks self-partner in the
        // transpose exchange and skip it: exactly two distinct call counts.
        let stats = Program::Cg.run(machine(), 16, ProblemSize::Tiny);
        let mut counts: Vec<u64> = stats.per_rank.iter().map(|r| r.app_calls).collect();
        counts.sort_unstable();
        counts.dedup();
        assert!(counts.len() <= 2, "expected at most two call-count classes: {counts:?}");
    }
}
