//! FLASH skeletons: AMR compressible hydrodynamics.
//!
//! FLASH (Fryxell et al. 2000) runs adaptive-mesh hydro with guard-cell
//! exchanges between neighboring blocks, global timestep reductions, and
//! periodic regridding that involves communicator management — the feature
//! that makes the ScalaBench baseline reject these programs in the paper.
//! Three problem setups are evaluated:
//!
//! * **Sedov** — spherical blast wave: 3D exchanges, regrids frequently.
//! * **Sod** — 1D shock tube: two-neighbor pipelines, small traces (6 MB at
//!   64 ranks in the paper).
//! * **StirTurb** — driven turbulence: no regridding but extra stirring
//!   collectives every step, the largest FLASH traces.

use siesta_mpisim::Rank;
use siesta_perfmodel::KernelDesc;

use crate::grid::Grid3d;
use crate::ProblemSize;

const TAG_GUARD: i32 = 70;

struct FlashConfig {
    iters: usize,
    /// 3D guard exchange (Sedov/StirTurb) or 1D pipe (Sod).
    one_dimensional: bool,
    /// Steps between regrids; `None` = never regrid.
    regrid_every: Option<usize>,
    /// Extra stirring/forcing collectives per step.
    stir_reductions: usize,
    /// Cells per rank scale.
    cells: f64,
    guard_bytes: usize,
}

/// Sedov blast wave (input 64³ in the paper).
pub async fn sedov(rank: &mut Rank, size: ProblemSize) {
    let cfg = FlashConfig {
        iters: size.iters(30),
        one_dimensional: false,
        regrid_every: Some(5),
        stir_reductions: 0,
        cells: size.extent(64).pow(3) as f64 / rank.nranks() as f64,
        guard_bytes: 4 * size.extent(64) * size.extent(64) / 16 * 8,
    };
    flash(rank, &cfg).await;
}

/// Sod shock tube: quasi-1D, the smallest traces of the suite bar IS.
pub async fn sod(rank: &mut Rank, size: ProblemSize) {
    let cfg = FlashConfig {
        iters: size.iters(25),
        one_dimensional: true,
        regrid_every: Some(12),
        stir_reductions: 0,
        // 1D slab decomposition: each rank still holds extent³/P cells.
        cells: size.extent(64).pow(3) as f64 / rank.nranks() as f64,
        guard_bytes: size.extent(64) * size.extent(64) / 8 * 8,
    };
    flash(rank, &cfg).await;
}

/// Driven (stirred) turbulence: every step adds forcing-term reductions.
pub async fn stir_turb(rank: &mut Rank, size: ProblemSize) {
    let cfg = FlashConfig {
        iters: size.iters(40),
        one_dimensional: false,
        regrid_every: None,
        stir_reductions: 3,
        cells: size.extent(64).pow(3) as f64 / rank.nranks() as f64,
        guard_bytes: 4 * size.extent(64) * size.extent(64) / 16 * 8,
    };
    flash(rank, &cfg).await;
}

async fn flash(rank: &mut Rank, cfg: &FlashConfig) {
    let p = rank.nranks();
    let world = rank.comm_world();
    let me = rank.rank();
    let grid = Grid3d::near_cubic(p);

    // FLASH duplicates the world communicator for its mesh/I-O layers at
    // startup — the first thing a comm-management-blind tool chokes on.
    let mesh_comm = rank.comm_dup(&world).await;

    // FLASH carries ~24 solution variables per cell (~192 B/cell).
    let hydro = KernelDesc::stencil(cfg.cells, 620.0, cfg.cells * 192.0);
    let eos = KernelDesc::divide_heavy(cfg.cells, 3.0, cfg.cells * 64.0);
    let guard_pack = KernelDesc::bookkeeping(cfg.guard_bytes as f64 / 16.0);

    let neighbors: Vec<usize> = if cfg.one_dimensional {
        let mut v = Vec::new();
        if me > 0 {
            v.push(me - 1);
        }
        if me + 1 < p {
            v.push(me + 1);
        }
        v
    } else {
        let mut v: Vec<usize> = grid
            .face_neighbors_periodic(me)
            .into_iter()
            .filter(|&n| n != me)
            .collect();
        v.dedup();
        v
    };

    // Initial conditions + first mesh check.
    rank.compute(&hydro);
    rank.bcast(&mesh_comm, 0, 256).await;
    rank.barrier(&mesh_comm).await;

    for step in 0..cfg.iters {
        // Guard-cell fill: nonblocking exchange with every neighbor.
        let mut reqs = Vec::with_capacity(neighbors.len() * 2);
        for &nb in &neighbors {
            reqs.push(rank.irecv(&mesh_comm, nb, TAG_GUARD, cfg.guard_bytes));
        }
        rank.compute(&guard_pack);
        for &nb in &neighbors {
            reqs.push(rank.isend(&mesh_comm, nb, TAG_GUARD, cfg.guard_bytes));
        }
        rank.waitall(&reqs).await;

        // Hydro sweeps (x then y) and equation of state.
        rank.compute(&hydro);
        rank.compute(&hydro);
        rank.compute(&eos);

        // Stirring module (StirTurb only): forcing-term reductions plus a
        // slab-decomposed spectral sum (reduce-scatter of mode energies).
        for _ in 0..cfg.stir_reductions {
            rank.allreduce(&mesh_comm, 48).await;
        }
        if cfg.stir_reductions > 0 {
            rank.reduce_scatter_block(&mesh_comm, 64).await;
        }

        // Global timestep.
        rank.allreduce(&mesh_comm, 16).await;

        // Regridding: exchange block counts, rebalance via a temporary
        // communicator split by refinement parity.
        if let Some(every) = cfg.regrid_every {
            if (step + 1) % every == 0 {
                rank.allgather(&mesh_comm, 8).await;
                let color = ((me / grid.nx.max(1)) % 2) as i64;
                if let Some(half) = rank.comm_split(&mesh_comm, color, me as i64).await {
                    rank.allreduce(&half, 8).await;
                    rank.comm_free(half);
                }
                rank.compute(&guard_pack);
                rank.barrier(&mesh_comm).await;
            }
        }
    }

    // Final I/O-ish gather of diagnostics to rank 0; block counts differ
    // per rank under AMR, so the sizes are rank-dependent (gatherv).
    let diag_counts: Vec<usize> = (0..p).map(|r| 48 + 16 * (r % 3)).collect();
    rank.gatherv(&mesh_comm, 0, &diag_counts).await;
    rank.comm_free(mesh_comm);
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn flash_variants_run_on_odd_counts() {
        for p in [2, 6, 12] {
            for prog in [Program::Sedov, Program::Sod, Program::StirTurb] {
                let stats = prog.run(machine(), p, ProblemSize::Tiny);
                assert!(stats.elapsed_ns() > 0.0, "{} p={p}", prog.name());
            }
        }
    }

    #[test]
    fn sod_traces_less_than_stirturb() {
        // Paper at 64 ranks: StirTurb 304 MB, Sod 6 MB.
        let m = machine();
        let sod = Program::Sod.run(m, 8, ProblemSize::Small).total_calls();
        let stir = Program::StirTurb.run(m, 8, ProblemSize::Small).total_calls();
        assert!(sod < stir, "Sod {sod} >= StirTurb {stir}");
    }

    #[test]
    fn sod_uses_pipeline_neighbors_only() {
        // End ranks of the 1D pipe talk to one neighbor, interior to two —
        // visible as fewer app calls on the ends.
        let stats = Program::Sod.run(machine(), 8, ProblemSize::Tiny);
        let end = stats.per_rank[0].app_calls;
        let mid = stats.per_rank[4].app_calls;
        assert!(mid > end);
    }
}
