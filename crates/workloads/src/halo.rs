//! Parameterized 2D halo-exchange microkernel for rank-count scaling
//! sweeps.
//!
//! Unlike the paper workloads, this body is deliberately minimal: four
//! periodic neighbor exchanges and a small stencil per step, closed by one
//! convergence allreduce. Per-rank state is a few hundred bytes, so worlds
//! of 10⁴–10⁶ virtual ranks fit comfortably in host memory — the scale
//! smoke tests and the `mpisim_scale` bench sweep it at 4096, 65 536, and
//! 2²⁰ ranks.

use siesta_mpisim::{Rank, RankFut};
use siesta_perfmodel::KernelDesc;

use crate::grid::{Dir, Grid2d};

const TAG_HALO: i32 = 90;

/// One rank of a 2D periodic halo exchange: `iters` steps, each swapping
/// `face_bytes` with the east/west and north/south neighbors and running a
/// small stencil, then a closing convergence allreduce.
pub async fn halo2d(rank: &mut Rank, iters: usize, face_bytes: usize) {
    let grid = Grid2d::near_square(rank.nranks());
    let comm = rank.comm_world();
    let me = rank.rank();
    let east = grid.neighbor_periodic(me, Dir::East);
    let west = grid.neighbor_periodic(me, Dir::West);
    let south = grid.neighbor_periodic(me, Dir::South);
    let north = grid.neighbor_periodic(me, Dir::North);
    let cells = (face_bytes / 8).max(16) as f64;
    let kernel = KernelDesc::stencil(cells, 12.0, cells * 8.0);

    for _ in 0..iters {
        // Flat axes (1×p or p×1 grids) would self-exchange; skip them.
        if grid.cols > 1 {
            rank.sendrecv(&comm, east, TAG_HALO, face_bytes, west, TAG_HALO, face_bytes)
                .await;
            rank.sendrecv(&comm, west, TAG_HALO, face_bytes, east, TAG_HALO, face_bytes)
                .await;
        }
        if grid.rows > 1 {
            rank.sendrecv(&comm, south, TAG_HALO, face_bytes, north, TAG_HALO, face_bytes)
                .await;
            rank.sendrecv(&comm, north, TAG_HALO, face_bytes, south, TAG_HALO, face_bytes)
                .await;
        }
        rank.compute(&kernel);
    }
    rank.allreduce(&comm, 8).await;
}

/// Boxed SPMD body driving [`halo2d`], in the shape `World::run` expects.
pub fn halo2d_body(
    iters: usize,
    face_bytes: usize,
) -> Box<dyn Fn(Rank) -> RankFut<'static> + Send + Sync> {
    Box::new(move |mut r: Rank| -> RankFut<'static> {
        Box::pin(async move {
            halo2d(&mut r, iters, face_bytes).await;
            r
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use siesta_mpisim::World;
    use siesta_perfmodel::{platform_b, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_b(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn halo_runs_on_assorted_counts() {
        for p in [1, 2, 3, 8, 12, 64] {
            let stats = World::new(machine(), p).run(halo2d_body(3, 4096));
            assert!(stats.elapsed_ns() > 0.0, "p={p}");
            // Every rank issues the same calls: the body is fully SPMD.
            let c0 = stats.per_rank[0].app_calls;
            assert!(stats.per_rank.iter().all(|r| r.app_calls == c0), "p={p}");
        }
    }

    #[test]
    fn halo_is_deterministic() {
        let a = World::new(machine(), 16).run(halo2d_body(4, 8192));
        let b = World::new(machine(), 16).run(halo2d_body(4, 8192));
        assert_eq!(a.elapsed_ns(), b.elapsed_ns());
        assert_eq!(a.schedule_hash(), b.schedule_hash());
    }
}
