//! NPB LU skeleton — a tenth workload beyond the paper's evaluation set.
//!
//! LU solves the Navier–Stokes equations with SSOR: each iteration sweeps a
//! lower-triangular system from the south-west corner of the 2D process
//! grid to the north-east (pipelined `recv west/north → compute → send
//! east/south` per k-plane, like SWEEP3D but one direction per triangular
//! half), then the upper-triangular system back, then computes the
//! right-hand side with halo exchanges. Included to exercise the pipeline
//! on a pattern the paper never tested — the synthesis path must not be
//! overfit to the nine evaluation programs.

use siesta_mpisim::Rank;
use siesta_perfmodel::KernelDesc;

use crate::grid::{Dir, Grid2d};
use crate::ProblemSize;

const TAG_LOWER: i32 = 80;
const TAG_UPPER: i32 = 81;
const TAG_HALO: i32 = 82;

pub async fn lu(rank: &mut Rank, size: ProblemSize) {
    let p = rank.nranks();
    let comm = rank.comm_world();
    let grid = Grid2d::near_square(p);
    let me = rank.rank();

    let n = size.extent(102); // class-C-ish extent, scaled
    let iters = size.iters(25);
    let k_blocks = match size {
        ProblemSize::Tiny => 2,
        ProblemSize::Small => 4,
        ProblemSize::Reference => 8,
    };

    let sub_x = (n / grid.cols.max(1)).max(4);
    let sub_y = (n / grid.rows.max(1)).max(4);
    let plane = (sub_x * sub_y) as f64;
    let face_bytes = sub_x.max(sub_y) * (n / k_blocks).max(1) * 5 * 8 / 4;
    let sweep_bytes = sub_x.max(sub_y) * 5 * 8;

    // Per-k-block triangular solve: multiply-heavy with some divides
    // (block diagonal inversions).
    let tri_kernel = KernelDesc::divide_heavy(plane / 4.0, 1.0, plane * 40.0)
        .then(&KernelDesc::stencil(plane * (n / k_blocks).max(1) as f64 / 8.0, 25.0, plane * 40.0));
    let rhs_kernel = KernelDesc::stencil(plane * 4.0, 60.0, plane * 160.0);

    rank.bcast(&comm, 0, 96).await;
    rank.barrier(&comm).await;

    for _ in 0..iters {
        // ---- Lower-triangular sweep: SW → NE wavefront per k block.
        for _k in 0..k_blocks {
            if let Some(w) = grid.neighbor(me, Dir::West) {
                rank.recv(&comm, w, TAG_LOWER, sweep_bytes).await;
            }
            if let Some(n_) = grid.neighbor(me, Dir::North) {
                rank.recv(&comm, n_, TAG_LOWER, sweep_bytes).await;
            }
            rank.compute(&tri_kernel);
            if let Some(e) = grid.neighbor(me, Dir::East) {
                rank.send(&comm, e, TAG_LOWER, sweep_bytes).await;
            }
            if let Some(s) = grid.neighbor(me, Dir::South) {
                rank.send(&comm, s, TAG_LOWER, sweep_bytes).await;
            }
        }
        // ---- Upper-triangular sweep: NE → SW.
        for _k in 0..k_blocks {
            if let Some(e) = grid.neighbor(me, Dir::East) {
                rank.recv(&comm, e, TAG_UPPER, sweep_bytes).await;
            }
            if let Some(s) = grid.neighbor(me, Dir::South) {
                rank.recv(&comm, s, TAG_UPPER, sweep_bytes).await;
            }
            rank.compute(&tri_kernel);
            if let Some(w) = grid.neighbor(me, Dir::West) {
                rank.send(&comm, w, TAG_UPPER, sweep_bytes).await;
            }
            if let Some(n_) = grid.neighbor(me, Dir::North) {
                rank.send(&comm, n_, TAG_UPPER, sweep_bytes).await;
            }
        }
        // ---- RHS: halo exchange + local stencil.
        let mut reqs = Vec::with_capacity(8);
        for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
            let nb = grid.neighbor_periodic(me, dir);
            reqs.push(rank.irecv(&comm, nb, TAG_HALO, face_bytes));
        }
        for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
            let nb = grid.neighbor_periodic(me, dir);
            reqs.push(rank.isend(&comm, nb, TAG_HALO, face_bytes));
        }
        rank.waitall(&reqs).await;
        rank.compute(&rhs_kernel);
    }

    // Residual norms.
    rank.allreduce(&comm, 40).await;
    rank.allreduce(&comm, 40).await;
}

#[cfg(test)]
mod tests {
    use crate::{ProblemSize, Program};
    use siesta_perfmodel::{platform_a, Machine, MpiFlavor};

    fn machine() -> Machine {
        Machine::new(platform_a(), MpiFlavor::OpenMpi)
    }

    #[test]
    fn lu_runs_on_various_counts() {
        for p in [4, 8, 9, 16] {
            let stats = Program::Lu.run(machine(), p, ProblemSize::Tiny);
            assert!(stats.elapsed_ns() > 0.0, "p={p}");
            assert!(stats.total_calls() > 0);
        }
    }

    #[test]
    fn lu_wavefront_is_pipelined() {
        // The SW corner (rank 0) starts the lower sweep; the NE corner
        // depends on everyone. Their per-iteration phase offsets show up
        // as different mpi wait times, but totals synchronize by the end.
        let stats = Program::Lu.run(machine(), 9, ProblemSize::Tiny);
        let max = stats.elapsed_ns();
        for r in &stats.per_rank {
            assert!(r.finish_ns > 0.6 * max);
        }
    }

    #[test]
    fn lu_is_not_in_the_paper_set() {
        assert!(!Program::ALL.contains(&Program::Lu));
        assert!(Program::EXTRA.contains(&Program::Lu));
    }
}
