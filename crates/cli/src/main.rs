//! `siesta` — command-line front end for the proxy-app synthesizer.
//!
//! ```text
//! siesta synthesize --program BT --nprocs 16 --size small --out bt.siesta
//! siesta replay     --proxy bt.siesta --platform B --flavor mpich
//! siesta compare    --proxy bt.siesta --program BT --size small
//! siesta emit-c     --proxy bt.siesta --out bt_proxy.c
//! siesta inspect    --proxy bt.siesta
//! siesta list
//! ```

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::Args;
use siesta_codegen::{emit_c, replay, wire, TerminalOp};
use siesta_core::{human_bytes, human_ms, Siesta, SiestaConfig};
use siesta_perfmodel::{platform_by_name, Machine, MpiFlavor};
use siesta_trace::TraceConfig;
use siesta_workloads::{ProblemSize, Program};

const USAGE: &str = "\
siesta — synthesize proxy applications for MPI programs (CLUSTER'24 reproduction)

USAGE:
    siesta <command> [--option value ...]

COMMANDS:
    synthesize   Trace a workload and generate a proxy-app (.siesta file)
                 --program <name>    one of the nine evaluation programs
                 --nprocs <n>        rank count (default 16)
                 --size <s>          tiny | small | reference (default small)
                 --platform <p>      A | B | C (default A)
                 --flavor <f>        openmpi | mpich | mvapich (default openmpi)
                 --scale <k>         shrinking factor (default 1)
                 --threshold <t>     compute clustering threshold (default 0.15)
                 --out <file>        output .siesta path (default <prog>.siesta)
                 --emit-c <file>     also write the C source
                 --from-trace <f>    synthesize from a saved .siestatrace
                                     instead of running the program
                 --no-memo           disable cross-rank grammar memoization
                                     (rebuild Sequitur per rank even for
                                     duplicate sequences; output unchanged)
                 --no-stream         materialize full per-rank id sequences
                                     instead of streaming them through the
                                     online Sequitur (more memory; output
                                     byte-identical — the differential oracle)
                 --stream-buf <n>    streaming ingest buffer, in event ids
                                     per rank (default 4096, env
                                     SIESTA_STREAM_BUF)
                 --trace-store <f>   also write the merged trace as a
                                     zero-copy columnar store (streamed
                                     rank by rank when streaming)
                 --sim-profile / --sim-trace-out / --critical-path
                                     profile the traced run in virtual time
                                     (see simulate)

    replay       Execute a generated proxy-app on a chosen machine
                 --proxy <file>  [--platform p] [--flavor f]

    compare      Replay a proxy next to its original program and report errors
                 --proxy <file> --program <name> [--size s] [--platform p] [--flavor f]

    emit-c       Write the C source of a generated proxy-app
                 --proxy <file> --out <file.c>

    retarget     Re-scale a fully-SPMD proxy to a different rank count
                 --proxy <file> --nprocs <n> --out <file>

    inspect      Print a proxy-app's structure summary
                 --proxy <file>

    trace        Trace a workload; print the merged event table or save it
                 as a zero-copy columnar store (.siestatrace)
                 --program <name> [--nprocs n] [--size s] [--platform p] [--flavor f]
                 [--out <file.siestatrace>] [--no-stream] [--stream-buf <n>]

    simulate     Sweep the event-driven simulator over rank counts; report
                 virtual time, wall time, ranks/s, peak RSS, schedule hash
                 --sim-ranks <list>  comma-separated counts, k/m binary
                                     suffixes ok (e.g. 512,4k,64k,1m);
                                     default 4096
                 --program <name>    evaluation program to sweep (counts
                                     must satisfy its grid constraints), or
                                     omit for the built-in 2D halo-exchange
                                     microkernel (any count)
                 --iters <n>         halo steps (default 10)
                 --face-bytes <b>    halo face payload bytes (default 4096)
                 --size <s>          program problem size (default tiny)
                 [--platform p]      default B (unbounded rank capacity)
                 [--flavor f]
                 --sim-profile       record per-rank virtual-time timelines;
                                     prints the per-call-class wait/transfer
                                     breakdown and writes the virtual-time
                                     Chrome trace (one track per rank,
                                     strided above 256 ranks)
                 --sim-trace-out <f> virtual-time trace path (implies
                                     --sim-profile; default sim-trace.json)
                 --critical-path     extract the longest virtual-time
                                     dependency chain (send→recv matches,
                                     collective joins, wait completions)
                                     and print it with a per-rank
                                     blocked/busy breakdown (implies
                                     timeline recording)

    list         Show available programs, platforms, and MPI flavors

GLOBAL OPTIONS (accepted by every command):
    --threads <n>       worker threads for the parallel phases: per-rank
                        Sequitur, QP batch solves, table-merge rounds
                        (default: all cores; 1 forces the sequential path —
                        output is bit-identical either way)
    --log-level <l>     error | warn | info | debug | trace | off
    --profile <file>    write a Chrome trace (chrome://tracing / Perfetto)
    --trace-out <file>  alias of --profile (at most one of the two)
    --obs-cap <n>       bound the flight recorder to n spans per thread
                        (ring buffer: oldest spans overwritten, dropped
                        count reported; default unbounded, env SIESTA_OBS_CAP)
    --comm-matrix <f>   write the per-rank-pair communication matrix (JSON:
                        p2p send counts/bytes, collective contribution
                        bytes) collected from the traced run
    --stats             print the per-phase span and metrics report
    --quiet             silence all logging

ENVIRONMENT:
    SIESTA_LOG              default log level
    SIESTA_OBS_CAP          default --obs-cap
    SIESTA_OBS_CANONICAL=1  timing-free canonical trace/report output
                            (byte-identical at any --threads width)
    SIESTA_SIM_EVT_CAP      bound --sim-profile to n events per rank (ring
                            buffer, exact dropped count; default unbounded)
    SIESTA_STREAM_BUF       default --stream-buf (event ids per rank)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `siesta help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Options accepted by every command (observability + parallelism).
const GLOBAL_OPTS: &[&str] = &[
    "comm-matrix", "log-level", "obs-cap", "profile", "quiet", "stats", "threads", "trace-out",
];
const GLOBAL_FLAGS: &[&str] =
    &["quiet", "stats", "no-memo", "no-stream", "sim-profile", "critical-path"];

/// `check_allowed` including the global observability options.
fn check_cmd_opts(args: &Args, cmd_opts: &[&str]) -> Result<(), String> {
    let mut allowed: Vec<&str> = cmd_opts.to_vec();
    allowed.extend_from_slice(GLOBAL_OPTS);
    args.check_allowed(&allowed)
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse_with_flags(argv, GLOBAL_FLAGS)?;

    // Observability setup, before any command output.
    if args.get_flag("quiet") {
        siesta_obs::log::set_off();
    } else if let Some(level) = args.get("log-level") {
        if !siesta_obs::set_level_from_str(level) {
            return Err(format!(
                "unknown log level {level} (error | warn | info | debug | trace | off)"
            ));
        }
    }
    let profile_path = match (args.get("profile"), args.get("trace-out")) {
        (Some(_), Some(_)) => {
            return Err("--profile and --trace-out are aliases; pass at most one".to_string())
        }
        (p, t) => p.or(t).map(str::to_string),
    };
    if let Some(path) = &profile_path {
        check_writable_dest(path)?;
        siesta_obs::set_profiling_enabled(true);
    }
    if args.get("obs-cap").is_some() {
        siesta_obs::set_span_capacity(args.get_usize("obs-cap", 0)?);
    }
    let comm_matrix_path = args.get("comm-matrix").map(str::to_string);
    if let Some(path) = &comm_matrix_path {
        check_writable_dest(path)?;
        siesta_mpisim::set_comm_matrix_enabled(true);
    }
    // Virtual-time profiling: any of the three artifacts turns the
    // recorder on. The Chrome trace is written only when asked for
    // explicitly or via the full --sim-profile.
    let sim_profile = args.get_flag("sim-profile")
        || args.get_flag("critical-path")
        || args.get("sim-trace-out").is_some();
    let sim_trace_path = if args.get("sim-trace-out").is_some() || args.get_flag("sim-profile") {
        Some(args.get_or("sim-trace-out", "sim-trace.json").to_string())
    } else {
        None
    };
    if sim_profile {
        if let Some(path) = &sim_trace_path {
            check_writable_dest(path)?;
        }
        siesta_mpisim::set_sim_profile_enabled(true);
    }
    if args.get("threads").is_some() {
        let n = args.get_usize("threads", 0)?;
        if n == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        siesta_par::set_threads(n);
    }

    let result = match args.command.as_str() {
        "synthesize" => cmd_synthesize(&args),
        "replay" => cmd_replay(&args),
        "compare" => cmd_compare(&args),
        "emit-c" => cmd_emit_c(&args),
        "retarget" => cmd_retarget(&args),
        "inspect" => cmd_inspect(&args),
        "trace" => cmd_trace(&args),
        "simulate" => cmd_simulate(&args),
        "list" => {
            check_cmd_opts(&args, &[])?;
            cmd_list()
        }
        other => Err(format!("unknown command {other}")),
    };

    // Export collected spans/metrics even on command failure: a profile of
    // the run up to the error is exactly what one wants to look at.
    // SIESTA_OBS_CANONICAL=1 selects the timing-free canonical exporters
    // (byte-identical across --threads widths; what the differential
    // tests compare).
    let canonical = std::env::var("SIESTA_OBS_CANONICAL").is_ok_and(|v| v == "1");
    let drained = siesta_obs::drain();
    if drained.dropped > 0 {
        siesta_obs::warn!(
            "flight recorder dropped {} spans (ring capacity {}); raise --obs-cap for a complete trace",
            drained.dropped,
            siesta_obs::span_capacity()
        );
    }
    let spans = drained.spans;
    if let Some(path) = profile_path {
        let json = if canonical {
            siesta_obs::chrome::chrome_trace_json_canonical(&spans)
        } else {
            siesta_obs::chrome::chrome_trace_json(&spans)
        };
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        siesta_obs::info!(
            "profile: {} spans written to {path} (load in chrome://tracing or ui.perfetto.dev)",
            spans.len()
        );
    }
    if let Some(path) = comm_matrix_path {
        siesta_mpisim::set_comm_matrix_enabled(false);
        match siesta_mpisim::take_comm_matrix() {
            Some(matrix) => {
                std::fs::write(&path, matrix.to_json())
                    .map_err(|e| format!("{path}: {e}"))?;
                siesta_obs::info!("communication matrix ({} ranks) written to {path}", matrix.nranks);
            }
            None => {
                return result.and(Err(
                    "--comm-matrix: no traced run in this command (only synthesize, trace, \
                     compare, and simulate collect a communication matrix)"
                        .to_string(),
                ))
            }
        }
    }
    if sim_profile {
        siesta_mpisim::set_sim_profile_enabled(false);
        match siesta_mpisim::take_sim_profile() {
            Some(snap) => {
                if let Some(path) = &sim_trace_path {
                    std::fs::write(path, snap.chrome_trace_json(SIM_TRACE_MAX_TRACKS))
                        .map_err(|e| format!("{path}: {e}"))?;
                    siesta_obs::info!(
                        "virtual-time trace ({} of {} rank tracks, {} events) written to {path}",
                        snap.nranks.min(SIM_TRACE_MAX_TRACKS),
                        snap.nranks,
                        snap.events_total()
                    );
                }
                print!("{}", snap.render_breakdown());
                if args.get_flag("critical-path") {
                    print!("{}", siesta_mpisim::critical_path(&snap).render());
                }
            }
            None => {
                return result.and(Err(
                    "--sim-profile/--critical-path: no simulated run in this command (only \
                     synthesize, trace, compare, and simulate run the simulator)"
                        .to_string(),
                ))
            }
        }
    }
    if args.get_flag("stats") {
        let metrics = siesta_obs::metrics_snapshot();
        let report = if canonical {
            siesta_obs::report::render_canonical_report(&spans, &metrics)
        } else {
            siesta_obs::report::render_report(&spans, &metrics)
        };
        print!("{report}");
    }
    result
}

/// Fail fast (and cleanly) when an output path's parent directory does not
/// exist, instead of surfacing a bare I/O error after minutes of work.
fn check_writable_dest(path: &str) -> Result<(), String> {
    let parent = Path::new(path).parent();
    if let Some(parent) = parent {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!(
                "{path}: parent directory {} does not exist",
                parent.display()
            ));
        }
    }
    Ok(())
}

/// Rank-track cap for the exported virtual-time Chrome trace; above it
/// the rank axis is strided (every k-th rank) so huge worlds stay
/// loadable in a trace viewer. Elided tracks are counted in the trace's
/// `siestaVtMeta` block.
const SIM_TRACE_MAX_TRACKS: usize = 256;

fn parse_program(name: &str) -> Result<Program, String> {
    Program::parse(name).ok_or_else(|| {
        format!(
            "unknown program {name} (available: {})",
            Program::ALL.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
        )
    })
}

fn parse_size(s: &str) -> Result<ProblemSize, String> {
    match s.to_ascii_lowercase().as_str() {
        "tiny" => Ok(ProblemSize::Tiny),
        "small" => Ok(ProblemSize::Small),
        "reference" | "ref" => Ok(ProblemSize::Reference),
        _ => Err(format!("unknown size {s} (tiny | small | reference)")),
    }
}

fn parse_machine(args: &Args) -> Result<Machine, String> {
    parse_machine_with_default(args, "A")
}

fn parse_machine_with_default(args: &Args, default_platform: &'static str) -> Result<Machine, String> {
    let platform_name = args.get_or("platform", default_platform);
    let platform = platform_by_name(&platform_name)
        .ok_or_else(|| format!("unknown platform {platform_name} (A | B | C)"))?;
    let flavor_name = args.get_or("flavor", "openmpi");
    let flavor = MpiFlavor::parse(&flavor_name)
        .ok_or_else(|| format!("unknown flavor {flavor_name} (openmpi | mpich | mvapich)"))?;
    Ok(Machine::new(platform, flavor))
}

/// Resolve the streaming-ingest options shared by `synthesize` and
/// `trace`: `--no-stream` and `--stream-buf` (env `SIESTA_STREAM_BUF`),
/// validated the same way as the other numeric flags.
fn parse_stream_opts(args: &Args) -> Result<(bool, usize), String> {
    let stream = !args.get_flag("no-stream");
    let explicit = match args.get("stream-buf") {
        Some(_) => Some(args.get_usize("stream-buf", 0)?),
        None => None,
    };
    let stream_buf = siesta_trace::resolve_stream_buf(explicit)?;
    Ok((stream, stream_buf))
}

fn cmd_synthesize(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &[
        "program", "nprocs", "size", "platform", "flavor", "scale", "threshold", "out", "emit-c",
        "from-trace", "no-memo", "no-stream", "stream-buf", "trace-store", "sim-profile",
        "sim-trace-out", "critical-path",
    ])?;
    // Offline path: synthesize from a saved merged trace.
    if let Some(trace_path) = args.get("from-trace") {
        let machine = parse_machine(args)?;
        let scale = args.get_f64("scale", 1.0)?;
        let out = args.require("out")?;
        let global =
            siesta_trace::load_trace(Path::new(trace_path)).map_err(|e| e.to_string())?;
        let config = SiestaConfig {
            scale,
            grammar_memo: !args.get_flag("no-memo"),
            ..SiestaConfig::default()
        };
        let synthesis = Siesta::new(config).synthesize_global(global, &machine);
        siesta_obs::info!(
            "synthesized from {trace_path}: raw {} -> size_C {} ({:.0}x)",
            human_bytes(synthesis.stats.raw_trace_bytes),
            human_bytes(synthesis.stats.size_c_bytes),
            synthesis.stats.compression_ratio()
        );
        wire::save(&synthesis.program, Path::new(out)).map_err(|e| e.to_string())?;
        println!("{out}");
        if let Some(c_path) = args.get("emit-c") {
            std::fs::write(c_path, emit_c(&synthesis.program)).map_err(|e| e.to_string())?;
        }
        return Ok(());
    }
    let program = parse_program(args.require("program")?)?;
    let nprocs = args.get_usize("nprocs", 16)?;
    if !program.valid_nprocs(nprocs) {
        return Err(format!(
            "{} cannot run on {nprocs} ranks (BT/SP need squares; CG/MG/IS need powers of two)",
            program.name()
        ));
    }
    let size = parse_size(&args.get_or("size", "small"))?;
    let machine = parse_machine(args)?;
    let scale = args.get_f64("scale", 1.0)?;
    let threshold = args.get_f64("threshold", 0.15)?;
    let out = args.get_or("out", "").to_string();
    let out = if out.is_empty() {
        format!("{}.siesta", program.name().to_lowercase())
    } else {
        out
    };

    siesta_obs::info!(
        "tracing {} on {} ranks ({size:?}, {})...",
        program.name(),
        nprocs,
        machine.label()
    );
    let (stream, stream_buf) = parse_stream_opts(args)?;
    let trace_store = args.get("trace-store").map(str::to_string);
    if let Some(p) = &trace_store {
        check_writable_dest(p)?;
    }
    let config = SiestaConfig {
        scale,
        trace: TraceConfig {
            cluster_threshold: threshold,
            stream_buf,
            ..TraceConfig::default()
        },
        grammar_memo: !args.get_flag("no-memo"),
        stream,
        ..SiestaConfig::default()
    };
    let siesta = Siesta::new(config);
    let body = move |r| program.body(size)(r);
    let (synthesis, traced) = if stream {
        let (st, traced) = siesta.trace_run_streamed(machine, nprocs, body);
        let sg = siesta.merge_streamed(st);
        if let Some(p) = &trace_store {
            sg.write_store(Path::new(p)).map_err(|e| format!("{p}: {e}"))?;
            siesta_obs::info!("columnar trace store written to {p}");
        }
        (siesta.synthesize_streamed_global(sg, &machine), traced)
    } else {
        let (trace, traced) = siesta.trace_run(machine, nprocs, body);
        let global = siesta.merge_trace(trace);
        if let Some(p) = &trace_store {
            siesta_trace::save_trace(&global, Path::new(p)).map_err(|e| format!("{p}: {e}"))?;
            siesta_obs::info!("columnar trace store written to {p}");
        }
        (siesta.synthesize_global(global, &machine), traced)
    };
    let s = &synthesis.stats;
    siesta_obs::info!("traced run: {}", human_ms(traced.elapsed_ns()));
    siesta_obs::info!(
        "raw trace {} -> size_C {} ({:.0}x); {} terminals, {} rules, {} main(s)",
        human_bytes(s.raw_trace_bytes),
        human_bytes(s.size_c_bytes),
        s.compression_ratio(),
        s.num_terminals,
        s.num_rules,
        s.num_mains
    );
    wire::save(&synthesis.program, Path::new(&out)).map_err(|e| e.to_string())?;
    println!("{out}");
    if let Some(c_path) = args.get("emit-c") {
        std::fs::write(c_path, emit_c(&synthesis.program)).map_err(|e| e.to_string())?;
        siesta_obs::info!("C source written to {c_path}");
    }
    Ok(())
}

fn load_proxy(args: &Args) -> Result<siesta_codegen::ProxyProgram, String> {
    let path = args.require("proxy")?;
    wire::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &["proxy", "platform", "flavor"])?;
    let program = load_proxy(args)?;
    let machine = parse_machine(args)?;
    siesta_obs::info!(
        "replaying {}-rank proxy (generated on {}, scale {}) on {}...",
        program.nranks,
        program.generated_on,
        program.scale,
        machine.label()
    );
    let stats = replay(&program, machine);
    println!("execution time: {}", human_ms(stats.elapsed_ns()));
    if program.scale > 1.0 {
        println!(
            "reproduced (x{}): {}",
            program.scale,
            human_ms(stats.elapsed_ns() * program.scale)
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &["proxy", "program", "size", "platform", "flavor"])?;
    let proxy_program = load_proxy(args)?;
    let program = parse_program(args.require("program")?)?;
    let size = parse_size(&args.get_or("size", "small"))?;
    let machine = parse_machine(args)?;
    let nprocs = proxy_program.nranks;
    siesta_obs::info!("running original {} on {} ranks...", program.name(), nprocs);
    let original = program.run(machine, nprocs, size);
    siesta_obs::info!("replaying proxy...");
    let proxy = replay(&proxy_program, machine);
    println!("original: {}", human_ms(original.elapsed_ns()));
    println!("proxy:    {}", human_ms(proxy.elapsed_ns()));
    let t = if proxy_program.scale > 1.0 {
        let reproduced = proxy.elapsed_ns() * proxy_program.scale;
        println!("reproduced (x{}): {}", proxy_program.scale, human_ms(reproduced));
        (reproduced - original.elapsed_ns()).abs() / original.elapsed_ns()
    } else {
        proxy.time_error(&original)
    };
    println!("time error:    {:.2}%", 100.0 * t);
    println!(
        "counter error: {:.2}%",
        100.0 * proxy.mean_counter_error(&original)
    );
    println!("per metric:");
    for (name, err) in siesta_core::per_metric_error_pct(&proxy, &original) {
        match err {
            Some(e) => println!("  {name:<8} {e:>6.2}%"),
            None => println!("  {name:<8} below measurement floor"),
        }
    }
    Ok(())
}

fn cmd_emit_c(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &["proxy", "out"])?;
    let program = load_proxy(args)?;
    let out = args.require("out")?;
    std::fs::write(out, emit_c(&program)).map_err(|e| e.to_string())?;
    println!("{out}");
    Ok(())
}

fn cmd_retarget(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &["proxy", "nprocs", "out"])?;
    let program = load_proxy(args)?;
    let nprocs = args.get_usize("nprocs", 0)?;
    if nprocs == 0 {
        return Err("missing required --nprocs".to_string());
    }
    let out = args.require("out")?;
    let retargeted = siesta_codegen::retarget(&program, nprocs).map_err(|e| e.to_string())?;
    wire::save(&retargeted, Path::new(out)).map_err(|e| e.to_string())?;
    siesta_obs::info!(
        "retargeted {} → {} ranks ({})",
        program.nranks, nprocs, retargeted.generated_on
    );
    println!("{out}");
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &["proxy"])?;
    let p = load_proxy(args)?;
    println!("ranks:         {}", p.nranks);
    println!("generated on:  {}", p.generated_on);
    println!("scale factor:  {}", p.scale);
    println!(
        "terminals:     {} ({} comm, {} compute)",
        p.terminals.len(),
        p.comm_terminals(),
        p.compute_terminals()
    );
    println!("rules:         {}", p.rules.len());
    println!("main rules:    {}", p.mains.len());
    println!("grammar size:  {} symbols", p.grammar_size());
    // Per-function histogram of comm terminals.
    let mut hist: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for t in &p.terminals {
        if let TerminalOp::Comm(e) = t {
            *hist.entry(e.func_name()).or_default() += 1;
        }
    }
    println!("comm terminal mix:");
    for (func, count) in hist {
        println!("  {func:<18} {count}");
    }
    for (i, m) in p.mains.iter().enumerate() {
        println!(
            "main {} covers ranks {} ({} symbols)",
            i,
            m.ranks,
            m.body.len()
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &[
        "program", "nprocs", "size", "platform", "flavor", "out", "no-stream", "stream-buf",
    ])?;
    let program = parse_program(args.require("program")?)?;
    let nprocs = args.get_usize("nprocs", 16)?;
    if !program.valid_nprocs(nprocs) {
        return Err(format!("{} cannot run on {nprocs} ranks", program.name()));
    }
    let size = parse_size(&args.get_or("size", "small"))?;
    let machine = parse_machine(args)?;
    let (stream, stream_buf) = parse_stream_opts(args)?;
    let out = args.get("out").map(str::to_string);
    if let Some(p) = &out {
        check_writable_dest(p)?;
    }
    let config = SiestaConfig {
        trace: TraceConfig { stream_buf, ..TraceConfig::default() },
        stream,
        ..SiestaConfig::default()
    };
    let siesta = Siesta::new(config);
    let body = move |r| program.body(size)(r);
    if stream {
        // Streaming ingest: sequences exist only as per-rank grammars; the
        // store is written rank by rank. Bytes match the --no-stream path.
        let (st, _) = siesta.trace_run_streamed(machine, nprocs, body);
        let sg = siesta.merge_streamed(st);
        match out {
            Some(out) => {
                sg.write_store(Path::new(&out)).map_err(|e| format!("{out}: {e}"))?;
                siesta_obs::info!(
                    "saved merged trace: {} terminals, {} ranks",
                    sg.table.len(),
                    sg.nranks
                );
                println!("{out}");
            }
            None => print!("{}", siesta_trace::text::render(&sg.to_global_trace())),
        }
    } else {
        let (trace, _) = siesta.trace_run(machine, nprocs, body);
        let global = siesta.merge_trace(trace);
        match out {
            Some(out) => {
                siesta_trace::save_trace(&global, Path::new(&out))
                    .map_err(|e| format!("{out}: {e}"))?;
                siesta_obs::info!(
                    "saved merged trace: {} terminals, {} ranks",
                    global.table.len(),
                    global.nranks
                );
                println!("{out}");
            }
            None => print!("{}", siesta_trace::text::render(&global)),
        }
    }
    Ok(())
}

/// Parse a `--sim-ranks` sweep list: comma-separated counts with optional
/// binary `k` (×1024) / `m` (×1 048 576) suffixes, e.g. `512,4k,64k,1m`.
fn parse_rank_list(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let lower = part.to_ascii_lowercase();
        let (digits, mult) = if let Some(d) = lower.strip_suffix('k') {
            (d, 1024usize)
        } else if let Some(d) = lower.strip_suffix('m') {
            (d, 1024 * 1024)
        } else {
            (lower.as_str(), 1)
        };
        let n: usize = digits
            .parse()
            .map_err(|_| format!("--sim-ranks: bad count {part}"))?;
        let n = n
            .checked_mul(mult)
            .ok_or_else(|| format!("--sim-ranks: {part} overflows"))?;
        if n == 0 {
            return Err("--sim-ranks: counts must be at least 1".to_string());
        }
        out.push(n);
    }
    if out.is_empty() {
        return Err("--sim-ranks: empty list".to_string());
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    check_cmd_opts(args, &[
        "sim-ranks", "program", "iters", "face-bytes", "size", "platform", "flavor",
        "sim-profile", "sim-trace-out", "critical-path",
    ])?;
    // Platform B by default: it is the only paper platform without a rank
    // capacity cap, and the sweeps go far past the others' limits.
    let machine = parse_machine_with_default(args, "B")?;
    let counts = parse_rank_list(&args.get_or("sim-ranks", "4096"))?;
    let program = match args.get("program") {
        Some(name) => Some(parse_program(name)?),
        None => None,
    };
    if program.is_some() && (args.get("iters").is_some() || args.get("face-bytes").is_some()) {
        return Err(
            "--iters/--face-bytes configure the halo kernel; with --program use --size".to_string(),
        );
    }
    let size = parse_size(&args.get_or("size", "tiny"))?;
    let iters = args.get_usize("iters", 10)?;
    let face_bytes = args.get_usize("face-bytes", 4096)?;
    if let Some(p) = program {
        for &n in &counts {
            if !p.valid_nprocs(n) {
                return Err(format!(
                    "{} cannot run on {n} ranks (BT/SP need squares; CG/MG/IS powers of two)",
                    p.name()
                ));
            }
        }
    }
    if let Some(max) = machine.platform.max_ranks() {
        if let Some(&over) = counts.iter().find(|&&n| n > max) {
            return Err(format!(
                "platform {} hosts at most {max} ranks (requested {over}); use --platform B",
                machine.platform.name
            ));
        }
    }

    let label = match program {
        Some(p) => format!("{} ({size:?})", p.name()),
        None => format!("halo2d (iters {iters}, face {face_bytes} B)"),
    };
    println!("simulating {label} on {}", machine.label());
    println!(
        "{:>9}  {:>12}  {:>9}  {:>11}  {:>9}  schedule hash",
        "ranks", "virtual", "wall", "ranks/s", "peak RSS"
    );
    // Any observability collection (virtual-time profile, comm matrix,
    // wall-clock spans) turns on the PMPI hook chain for the sweep; an
    // unobserved sweep stays hook-free (the fastest path).
    let instrument = siesta_mpisim::sim_profile_enabled()
        || siesta_mpisim::comm_matrix_enabled()
        || siesta_obs::profiling_enabled();
    for &n in &counts {
        // Fresh per count: collectors are sized to their world. A
        // multi-count sweep keeps the last count's profile snapshot.
        let hook: Option<std::sync::Arc<dyn siesta_mpisim::PmpiHook>> = instrument.then(|| {
            let mut hooks: Vec<std::sync::Arc<dyn siesta_mpisim::PmpiHook>> =
                vec![std::sync::Arc::new(siesta_mpisim::ObsHook::new(n))];
            if siesta_mpisim::sim_profile_enabled() {
                hooks.push(siesta_mpisim::SimProfiler::install(n));
            }
            if hooks.len() == 1 {
                hooks.pop().unwrap()
            } else {
                std::sync::Arc::new(siesta_mpisim::FanoutHook::new(hooks))
            }
        });
        let t0 = std::time::Instant::now();
        let stats = match (program, &hook) {
            (Some(p), Some(h)) => p.run_hooked(machine, n, size, h.clone()),
            (Some(p), None) => p.run(machine, n, size),
            (None, hook) => {
                let mut world = siesta_mpisim::World::new(machine, n);
                if let Some(h) = hook {
                    world = world.with_hook(h.clone());
                }
                world.run(siesta_workloads::halo::halo2d_body(iters, face_bytes))
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let rss = siesta_obs::peak_rss_bytes()
            .map(|b| human_bytes(b as usize))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "{n:>9}  {:>12}  {:>8.2}s  {:>11.0}  {:>9}  {:016x}",
            human_ms(stats.elapsed_ns()),
            wall,
            n as f64 / wall.max(1e-9),
            rss,
            stats.schedule_hash()
        );
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("programs (paper Table 3):");
    for p in Program::ALL {
        println!(
            "  {:<10} valid nprocs e.g. {:?}{}",
            p.name(),
            p.paper_nprocs(),
            if p.uses_comm_management() { "  (uses communicator management)" } else { "" }
        );
    }
    println!("\nplatforms (paper Table 2): A (Xeon 6248 + HDR), B (Xeon Phi KNL + OPA), C (E5-2680v4, single node)");
    println!("flavors: openmpi, mpich, mvapich");
    println!("sizes: tiny, small, reference");
    Ok(())
}
