//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::{HashMap, HashSet};

/// Parsed command line: a subcommand plus `--key value` options and
/// valueless boolean `--flag`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    pub command: String,
    options: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parse `[command, --key, value, --key, value, ...]` with no boolean
    /// flags declared. The binary itself parses through
    /// [`Args::parse_with_flags`]; this entry point stays for flagless use.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        Args::parse_with_flags(argv, &[])
    }

    /// Parse, treating each name in `bool_flags` as a valueless boolean
    /// flag (`--quiet` style); everything else stays `--key value`.
    pub fn parse_with_flags<I: IntoIterator<Item = String>>(
        argv: I,
        bool_flags: &[&str],
    ) -> Result<Args, String> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or("missing subcommand")?;
        if command.starts_with("--") {
            return Err(format!("expected a subcommand, got option {command}"));
        }
        let mut options = HashMap::new();
        let mut flags = HashSet::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {key}"))?
                .to_string();
            if bool_flags.contains(&key.as_str()) {
                if !flags.insert(key.clone()) {
                    return Err(format!("--{key} given twice"));
                }
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            if options.insert(key.clone(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { command, options, flags })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Was the boolean flag `--key` given?
    pub fn get_flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    pub fn get_or(&self, key: &str, default: &'static str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} must be an integer, got {v}")),
        }
    }

    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} must be a number, got {v}")),
        }
    }

    /// Error on any option or flag not in `allowed` (typo protection).
    pub fn check_allowed(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown option --{key} (allowed: {})",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("synthesize --program BT --nprocs 16").unwrap();
        assert_eq!(a.command, "synthesize");
        assert_eq!(a.get("program"), Some("BT"));
        assert_eq!(a.get_usize("nprocs", 4).unwrap(), 16);
        assert_eq!(a.get_usize("missing", 4).unwrap(), 4);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("--program BT").is_err());
        assert!(parse("run --program").is_err());
        assert!(parse("run program BT").is_err());
        assert!(parse("run --x 1 --x 2").is_err());
    }

    #[test]
    fn numeric_validation() {
        let a = parse("run --nprocs sixteen").unwrap();
        assert!(a.get_usize("nprocs", 4).is_err());
        let b = parse("run --scale 2.5").unwrap();
        assert_eq!(b.get_f64("scale", 1.0).unwrap(), 2.5);
    }

    #[test]
    fn allowed_list() {
        let a = parse("run --program BT --bogus 1").unwrap();
        assert!(a.check_allowed(&["program"]).is_err());
        assert!(a.check_allowed(&["program", "bogus"]).is_ok());
    }

    fn parse_flags(s: &str, flags: &[&str]) -> Result<Args, String> {
        Args::parse_with_flags(s.split_whitespace().map(str::to_string), flags)
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse_flags("run --quiet --program BT --stats", &["quiet", "stats"]).unwrap();
        assert!(a.get_flag("quiet"));
        assert!(a.get_flag("stats"));
        assert!(!a.get_flag("verbose"));
        assert_eq!(a.get("program"), Some("BT"));
        // A declared flag never swallows the next token.
        let b = parse_flags("run --quiet 4", &["quiet"]);
        assert!(b.is_err(), "stray positional token must be rejected: {b:?}");
    }

    #[test]
    fn boolean_flags_reject_duplicates_and_typos() {
        assert!(parse_flags("run --quiet --quiet", &["quiet"]).is_err());
        // An undeclared name parses as a key-value option: bare, it lacks a
        // value; with one, check_allowed still catches the typo.
        assert!(parse_flags("run --quite", &["quiet"]).is_err());
        let a = parse_flags("run --quite 1", &["quiet"]).unwrap();
        assert!(a.check_allowed(&["quiet"]).is_err());
    }

    #[test]
    fn flags_participate_in_typo_protection() {
        let a = parse_flags("run --stats", &["stats"]).unwrap();
        assert!(a.check_allowed(&["program"]).is_err());
        assert!(a.check_allowed(&["program", "stats"]).is_ok());
    }
}
