//! End-to-end tests of the `siesta` binary itself.

use std::path::PathBuf;
use std::process::{Command, Output};

fn siesta(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_siesta"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("siesta_cli_test_{}_{name}", std::process::id()))
}

#[test]
fn help_and_list_work() {
    let out = siesta(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("synthesize"));
    assert!(text.contains("retarget"));

    let out = siesta(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Sweep3d"));
    assert!(text.contains("communicator management"));
}

#[test]
fn full_cli_round_trip() {
    let proxy = tmp("mg.siesta");
    let c_file = tmp("mg.c");
    // synthesize
    let out = siesta(&[
        "synthesize",
        "--program",
        "MG",
        "--nprocs",
        "8",
        "--size",
        "tiny",
        "--out",
        proxy.to_str().unwrap(),
        "--emit-c",
        c_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(proxy.exists());
    let c = std::fs::read_to_string(&c_file).unwrap();
    assert!(c.contains("MPI_Init"));

    // inspect
    let out = siesta(&["inspect", "--proxy", proxy.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ranks:         8"));
    assert!(text.contains("MPI_Sendrecv"));

    // replay on another platform
    let out = siesta(&["replay", "--proxy", proxy.to_str().unwrap(), "--platform", "B"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("execution time"));

    // compare against the original
    let out = siesta(&[
        "compare",
        "--proxy",
        proxy.to_str().unwrap(),
        "--program",
        "MG",
        "--size",
        "tiny",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("time error"));
    assert!(text.contains("per metric"));

    std::fs::remove_file(&proxy).ok();
    std::fs::remove_file(&c_file).ok();
}

#[test]
fn trace_prints_the_event_table() {
    let out = siesta(&["trace", "--program", "IS", "--nprocs", "8", "--size", "tiny"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("global terminal table"));
    assert!(text.contains("Alltoallv"));
    assert!(text.contains("rank 0"));
}

#[test]
fn errors_are_reported_cleanly() {
    // Unknown program.
    let out = siesta(&["synthesize", "--program", "FT"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown program"));

    // Invalid rank count for BT.
    let out = siesta(&["synthesize", "--program", "BT", "--nprocs", "7"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot run on 7 ranks"));

    // Unknown option.
    let out = siesta(&["list", "--bogus", "1"]);
    assert!(!out.status.success() || !String::from_utf8_lossy(&out.stderr).is_empty());

    // Missing proxy file.
    let out = siesta(&["inspect", "--proxy", "/nonexistent.siesta"]);
    assert!(!out.status.success());

    // Garbage proxy file.
    let junk = tmp("junk.siesta");
    std::fs::write(&junk, b"not a siesta file at all").unwrap();
    let out = siesta(&["inspect", "--proxy", junk.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));
    std::fs::remove_file(&junk).ok();
}

#[test]
fn retarget_via_cli() {
    // A fully-SPMD program: IS (collectives only... plus scan) is SPMD but
    // its alltoallv counts are per-rank — expect a clean refusal. MG has
    // rank-dependent halos — also refused. Build a proxy that retargets:
    // use CG at 4 ranks? CG has diagonal branches. Simplest: verify the
    // refusal path is clean and informative.
    let proxy = tmp("is.siesta");
    let out = siesta(&[
        "synthesize",
        "--program",
        "IS",
        "--nprocs",
        "8",
        "--size",
        "tiny",
        "--out",
        proxy.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let retargeted = tmp("is16.siesta");
    let out = siesta(&[
        "retarget",
        "--proxy",
        proxy.to_str().unwrap(),
        "--nprocs",
        "16",
        "--out",
        retargeted.to_str().unwrap(),
    ]);
    // IS is refused (per-rank alltoallv counts) with a precise reason.
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("non-uniform") || err.contains("rank"),
        "unexpected refusal message: {err}"
    );
    std::fs::remove_file(&proxy).ok();
}

#[test]
fn offline_trace_to_synthesis_workflow() {
    let trace_file = tmp("cg.siestatrace");
    let proxy = tmp("cg_offline.siesta");
    let out = siesta(&[
        "trace",
        "--program",
        "CG",
        "--nprocs",
        "8",
        "--size",
        "tiny",
        "--out",
        trace_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(trace_file.exists());

    let out = siesta(&[
        "synthesize",
        "--from-trace",
        trace_file.to_str().unwrap(),
        "--out",
        proxy.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(proxy.exists());

    // The offline proxy replays like an online one.
    let out = siesta(&["replay", "--proxy", proxy.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("execution time"));

    // A .siesta file is not a .siestatrace file: clean rejection.
    let out = siesta(&[
        "synthesize",
        "--from-trace",
        proxy.to_str().unwrap(),
        "--out",
        tmp("bad.siesta").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));

    std::fs::remove_file(&trace_file).ok();
    std::fs::remove_file(&proxy).ok();
}

#[test]
fn threads_flag_is_validated_and_output_invariant() {
    // --threads 0 is rejected up front.
    let out = siesta(&["list", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));
    let out = siesta(&["list", "--threads", "two"]);
    assert!(!out.status.success());

    // The same synthesis at --threads 1 and --threads 4 writes
    // byte-identical .siesta files: the CLI face of the determinism
    // contract (the in-process sweep lives in tests/differential_parallel.rs).
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let proxy = tmp(&format!("is_t{threads}.siesta"));
        let out = siesta(&[
            "synthesize",
            "--program",
            "IS",
            "--nprocs",
            "8",
            "--size",
            "tiny",
            "--threads",
            threads,
            "--out",
            proxy.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        outputs.push(std::fs::read(&proxy).unwrap());
        std::fs::remove_file(&proxy).ok();
    }
    assert_eq!(outputs[0], outputs[1], "--threads changed the synthesized bytes");
}
