//! `siesta-hash` — a deterministic, zero-dependency fast hasher for the
//! synthesis hot paths.
//!
//! The std `HashMap` defaults to SipHash-1-3 behind a per-process
//! `RandomState`. That is the right call for maps keyed by untrusted
//! input, but the pipeline's hot maps — the Sequitur digram table, the
//! merge remap tables, the QP-batch dedup index, the grammar memo index —
//! are keyed by small trusted values (symbol pairs, rule ids, counter
//! bit-patterns) and are rebuilt millions of times per synthesis. Two
//! properties matter there and SipHash has neither:
//!
//! 1. **Speed.** A multiply-rotate mix (the FxHash family, as used by the
//!    Rust compiler and Firefox) hashes a digram key in a handful of
//!    cycles instead of a full SipHash permutation per 8-byte block.
//! 2. **Determinism.** No `RandomState`: the same key hashes to the same
//!    value in every process, on every run. Nothing in the pipeline's
//!    *output* may depend on iteration order anyway (the determinism
//!    contract in DESIGN.md §9 forces first-seen orders everywhere), but
//!    fixed hashing also makes allocation patterns, collision behaviour,
//!    and perf profiles reproducible across runs and machines.
//!
//! Collisions are a non-issue for correctness: `HashMap` compares keys
//! with `Eq` on collision, so a poor hash can only cost time. Hash-flood
//! resistance is deliberately traded away — no key here crosses a trust
//! boundary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplier from the 64-bit FxHash mix; close to 2^64/φ with good
/// low-bit diffusion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A deterministic multiply-rotate hasher (FxHash-style).
///
/// Not cryptographic, not flood-resistant, and the output is **stable
/// across processes**: there is no per-process or per-instance seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Little-endian 8-byte chunks, then one padded tail word. The tail
        // carries its length so "ab" + "c" and "a" + "bc" cannot collide
        // into the same state by construction of the chunking alone.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = rem.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.mix(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.mix(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.mix(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.mix(i as usize as u64);
    }
}

/// The fixed-seed `BuildHasher`: `Default` constructs identical hashers in
/// every process (the whole point — contrast `std::hash::RandomState`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] (type-inference-friendly constructor).
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// An [`FxHashMap`] pre-sized for `capacity` entries. The hot maps all
/// know a data-derived bound up front (sequence length, table size), so
/// they can skip the rehash-on-grow ladder entirely.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// An [`FxHashSet`] pre-sized for `capacity` entries.
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Hash one value with the deterministic hasher — the content-hash used by
/// the cross-rank grammar memo index and anywhere else a stable 64-bit
/// fingerprint of trusted data is needed.
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_processes() {
        // Fixed expected values: the hasher has no per-process seed (no
        // `RandomState`), so these constants must hold in *every* process,
        // on every run — this test is the cross-process determinism
        // witness. If it ever fails, the algorithm changed and every
        // persisted fingerprint assumption should be re-examined.
        assert_eq!(fx_hash_one(&0u64), 0);
        assert_eq!(fx_hash_one(&1u64), 0x517c_c1b7_2722_0a95);
        assert_eq!(fx_hash_one(&42u32), fx_hash_one(&42u32));
        let seq: Vec<u32> = (0..100).collect();
        assert_eq!(fx_hash_one(&seq), fx_hash_one(&seq.clone()));
        // Two fresh `Default` build-hashers agree (RandomState would not).
        use std::hash::BuildHasher;
        let a = FxBuildHasher::default().hash_one(12345u64);
        let b = FxBuildHasher::default().hash_one(12345u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_spread() {
        // Not a statistical test — just a guard against a degenerate mix
        // (e.g. everything hashing to 0 after a refactor).
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(fx_hash_one(&i));
        }
        assert_eq!(seen.len(), 10_000, "64-bit collisions in 10k counters");
    }

    #[test]
    fn byte_tail_length_disambiguates() {
        // The padded tail word embeds its length: a 1-byte and a 2-byte
        // suffix with equal padded bytes must not collide structurally.
        assert_ne!(fx_hash_one(&[1u8][..]), fx_hash_one(&[1u8, 0][..]));
        assert_ne!(fx_hash_one(b"ab".as_slice()), fx_hash_one(b"a".as_slice()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u64), usize> = fx_map_with_capacity(64);
        for i in 0..64u32 {
            m.insert((i, (i as u64) << 8), i as usize);
        }
        assert_eq!(m.len(), 64);
        for i in 0..64u32 {
            assert_eq!(m.get(&(i, (i as u64) << 8)), Some(&(i as usize)));
        }
        let s: FxHashSet<u32> = (0..10).collect();
        assert!(s.contains(&7) && !s.contains(&10));
    }

    #[test]
    fn sequence_hash_is_content_sensitive() {
        let a: Vec<u32> = vec![1, 2, 3, 4];
        let mut b = a.clone();
        assert_eq!(fx_hash_one(&a), fx_hash_one(&b));
        b[2] = 9;
        assert_ne!(fx_hash_one(&a), fx_hash_one(&b));
        // Order matters.
        assert_ne!(fx_hash_one(&vec![1u32, 2]), fx_hash_one(&vec![2u32, 1]));
    }
}
